"""Client for the scan service's framed-JSON TCP protocol.

:class:`ServiceClient` is the only thing other processes need: it holds
one connection (reconnecting per call would also work — the protocol is
stateless — but reuse keeps submit-then-poll cheap), frames requests
with the cluster wire codecs, and raises the same exception taxonomy
the in-process service raises, so callers can be written against
:class:`~repro.service.service.ScanService` and pointed at either.

Configs go over the wire via
:func:`~repro.engine.wire.config_to_wire`; detections come back in wire
form and are decoded to :class:`~repro.workload.generator.Detection`
by :meth:`ServiceClient.fetch_detections`.
"""

from __future__ import annotations

import socket
import time

from ..cluster.protocol import recv_message, send_message
from ..engine.wire import config_to_wire, detection_from_wire
from .server import SERVICE_PROTOCOL_VERSION
from .service import AdmissionError, ServiceError, UnknownRunError

__all__ = ["PaginationError", "ServiceClient"]


class PaginationError(ServiceError):
    """A paged response failed to make progress.

    Raised client-side when a ``results`` page reports a ``next_offset``
    at or before the offset just fetched: following it would re-fetch
    the same page forever. A buggy or protocol-skewed server triggers
    this once, loudly, instead of spinning the client.
    """

_ERROR_KINDS = {
    "admission": AdmissionError,
    "unknown-run": UnknownRunError,
    "timeout": TimeoutError,
}


class ServiceClient:
    """Speak to a :class:`~repro.service.server.ServiceServer`.

    Usable as a context manager; not thread-safe (one connection, serial
    request/response — give each thread its own client).
    """

    def __init__(self, address: tuple[str, int], *, timeout: float = 30.0):
        host, port = address
        self._sock = socket.create_connection((host, int(port)), timeout=timeout)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- plumbing --------------------------------------------------------

    def request(self, kind: str, **fields) -> dict:
        """One framed round-trip; raises the service's exception for
        ``ok: false`` responses."""
        message = {
            "type": kind,
            "protocol_version": SERVICE_PROTOCOL_VERSION,
            **fields,
        }
        send_message(self._sock, message)
        response = recv_message(self._sock)
        if not response.get("ok"):
            error = response.get("error", "service request failed")
            raise _ERROR_KINDS.get(response.get("kind"), ServiceError)(error)
        return response

    # -- API -------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("ok"))

    def submit(self, config, *, backend: str | None = None, jobs: int = 1) -> dict:
        """Submit a scan config; returns the run view (with
        ``coalesced`` folded in so callers see dedup happen)."""
        wire = config if isinstance(config, dict) else config_to_wire(config)
        fields: dict = {"config": wire, "jobs": jobs}
        if backend is not None:
            fields["backend"] = backend
        response = self.request("submit", **fields)
        run = response["run"]
        run["coalesced"] = response["coalesced"]
        return run

    def status(self, run_id: str) -> dict:
        return self.request("status", run_id=run_id)["run"]

    def runs(self) -> list[dict]:
        return self.request("runs")["runs"]

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def drain(self, timeout: float | None = None) -> bool:
        return bool(self.request("drain", timeout=timeout)["drained"])

    def wait(self, run_id: str, timeout: float | None = None, poll: float = 0.1) -> dict:
        """Poll ``status`` until the run is terminal; returns the view.

        Client-side polling (rather than the server's blocking ``wait``)
        keeps the connection responsive to short socket timeouts and
        mirrors what a remote dashboard would do.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            view = self.status(run_id)
            if view["state"] in ("completed", "failed"):
                return view
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run {run_id} still {view['state']} after {timeout}s"
                )
            time.sleep(poll)

    def results(self, run_id: str, offset: int = 0, limit: int | None = None) -> dict:
        """One page of a completed run's detections (wire form)."""
        fields: dict = {"run_id": run_id, "offset": offset}
        if limit is not None:
            fields["limit"] = limit
        response = self.request("results", **fields)
        response.pop("ok", None)
        response.pop("type", None)
        return response

    def fetch_detections(self, run_id: str, page_size: int = 256) -> list:
        """Every detection of a completed run, decoded, via paging.

        Raises :class:`PaginationError` if a page's ``next_offset``
        fails to advance past the offset it was fetched at — the loop
        must terminate even against a buggy or older server.
        """
        detections = []
        offset = 0
        while True:
            page = self.results(run_id, offset=offset, limit=page_size)
            detections.extend(
                detection_from_wire(d) for d in page["detections"]
            )
            next_offset = page["next_offset"]
            if next_offset is None:
                return detections
            if not isinstance(next_offset, int) or next_offset <= offset:
                raise PaginationError(
                    f"run {run_id}: results page at offset {offset} "
                    f"reported non-advancing next_offset {next_offset!r}"
                )
            offset = next_offset
