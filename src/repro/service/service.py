"""The resident scan service: run queue, warm-world cache, paged results.

Everything before this module was one-shot — build a world, scan, exit.
:class:`ScanService` turns the same machinery into a multi-tenant
resident process:

- **Admission-controlled run queue.** ``submit`` derives the run id
  from the config digest, so a duplicate submission — same seed, scale,
  shards, thresholds — coalesces onto the in-flight or completed run
  instead of scanning twice. A bounded queue (``max_queue``) rejects
  overload loudly with :class:`AdmissionError` instead of thrashing;
  ``executors`` caps concurrent scans.

- **Warm-entity cache.** Shard context snapshots
  (:class:`~repro.engine.scan.ShardContextSnapshot`) rest in a
  TTL + LRU tier between runs; before each run the service primes the
  engine's process-level store with every resident snapshot the run's
  shards will want, so back-to-back runs skip the cold world syncs.
  Per-run hit/miss counts land in the run manifest.

- **Durable, restart-surviving results.** Every run journals to its own
  :class:`~repro.runtime.RunLedger` under the service data dir. Results
  are *served from completed ledgers* — fetching never re-scans — and a
  restarted service adopts what it finds on disk: complete ledgers
  become servable ``completed`` runs, incomplete ones re-enter the
  queue as ``resuming`` and finish from the journal byte-identically.

- **Supervised execution tier.** Each admitted run executes through one
  of the existing backends: the batch :class:`~repro.engine.ScanEngine`
  (default), the streaming engine, or an embedded cluster
  — a per-run :class:`~repro.cluster.coordinator.Coordinator` fronted
  by an :class:`~repro.cluster.autoscale.ElasticPool` that scales local
  workers against queue depth. ``shutdown`` drains gracefully: active
  runs finish (their shards are journaled either way), queued runs stay
  queued on disk for the next start.

The service is transport-agnostic; :mod:`repro.service.server` puts a
length-prefixed JSON TCP front on it and
:mod:`repro.service.client` speaks to that from other processes.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque

from ..engine.plan import build_full_schedule
from ..engine.scan import (
    context_snapshot_for,
    context_snapshot_stats,
    install_context_snapshot,
    shard_chain_name,
)
from ..engine.wire import config_from_wire, detection_to_wire
from .cache import TTLCache
from .registry import COALESCE_STATES, RunRecord, RunRegistry, run_id_for

__all__ = [
    "AdmissionError",
    "BACKENDS",
    "DEFAULT_EXECUTORS",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_WARM_TTL",
    "ScanService",
    "ServiceError",
    "UnknownRunError",
]

#: execution backends a run may request.
BACKENDS = ("batch", "stream", "cluster")

DEFAULT_EXECUTORS = 2
DEFAULT_MAX_QUEUE = 16
#: seconds a warm shard-context snapshot stays resident untouched.
DEFAULT_WARM_TTL = 600.0
#: seconds a decoded merge result stays resident untouched.
DEFAULT_RESULTS_TTL = 300.0


class ServiceError(RuntimeError):
    """The request cannot be served (bad state, bad arguments)."""


class AdmissionError(ServiceError):
    """The run was rejected at admission (queue full or draining)."""


class UnknownRunError(ServiceError):
    """No run with that id exists in this service's registry."""


class ScanService:
    """A resident multi-tenant scan service over a data directory.

    Thread-safe throughout: the TCP server calls into it from connection
    handler threads while executor threads run scans. All run-record
    state transitions happen under one condition variable, which also
    serves as the completion signal for :meth:`wait`.
    """

    def __init__(
        self,
        data_dir,
        *,
        executors: int = DEFAULT_EXECUTORS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        warm_ttl: float | None = DEFAULT_WARM_TTL,
        warm_entries: int = 64,
        results_ttl: float | None = DEFAULT_RESULTS_TTL,
        results_entries: int = 16,
        default_backend: str = "batch",
        cluster_workers: int = 2,
        clock=time.monotonic,
    ) -> None:
        if executors < 1:
            raise ValueError(f"executors must be >= 1, got {executors}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if default_backend not in BACKENDS:
            raise ValueError(
                f"default_backend must be one of {BACKENDS}, got {default_backend!r}"
            )
        if cluster_workers < 1:
            raise ValueError(f"cluster_workers must be >= 1, got {cluster_workers}")
        self.registry = RunRegistry(data_dir)
        self.executors = executors
        self.max_queue = max_queue
        self.default_backend = default_backend
        self.cluster_workers = cluster_workers
        #: resident shard-context snapshots, keyed by chain name.
        self.warm_cache = TTLCache(warm_entries, warm_ttl, clock=clock)
        #: decoded merge results for completed runs, keyed by run id.
        self.results_cache = TTLCache(results_entries, results_ttl, clock=clock)

        self._cond = threading.Condition()
        self._records: dict[str, RunRecord] = {}
        self._queue: deque[str] = deque()
        self._active: set[str] = set()
        self._stopping = False
        self._draining = False
        self._threads: list[threading.Thread] = []
        self._started = False
        self.counters = {
            "submitted": 0,
            "coalesced": 0,
            "rejected": 0,
            "resubmitted": 0,
            "completed": 0,
            "failed": 0,
            "adopted_resuming": 0,
            "adopted_completed": 0,
            "warm_hits": 0,
            "warm_misses": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ScanService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def start(self) -> None:
        """Adopt what the data dir holds, then start the executor pool."""
        if self._started:
            return
        self._started = True
        self._adopt()
        for index in range(self.executors):
            thread = threading.Thread(
                target=self._executor_loop,
                name=f"scan-service-executor-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _adopt(self) -> None:
        """Reconcile persisted runs with their ledgers (restart path).

        The ledger is the source of truth: a complete journal makes the
        run ``completed`` (whatever the manifest said when the previous
        process died), an incomplete one re-enters the queue as
        ``resuming``, a never-started ``queued`` run re-enters as
        ``queued``, and an unreadable/mismatched ledger fails the run
        with the ledger's (now self-describing) error message.
        """
        from ..runtime.ledger import LedgerError, RunLedger

        for run_id, record in self.registry.load_all().items():
            if record.state == "completed":
                self._records[run_id] = record
                continue
            if record.state == "failed":
                self._records[run_id] = record
                continue
            ledger_path = self.registry.ledger_path(run_id)
            if not ledger_path.exists():
                # submitted but never started: back into the queue.
                record.state = "queued"
                self._records[run_id] = record
                self._queue.append(run_id)
                self.registry.save(record)
                continue
            try:
                ledger = RunLedger.open(ledger_path)
            except LedgerError as exc:
                record.state = "failed"
                record.error = str(exc)
                record.finished_at = time.time()
                self._records[run_id] = record
                self.registry.save(record)
                continue
            try:
                complete = ledger.is_complete
                record.shard_count = ledger.shard_count
                if complete:
                    result = ledger.merge()
                    record.state = "completed"
                    record.summary = self._summarize(result)
                    record.shards_resumed = ledger.completed_count
                    record.shards_recorded = 0
                    if record.finished_at is None:
                        record.finished_at = time.time()
                    self.results_cache.put(run_id, result)
                    self.counters["adopted_completed"] += 1
                else:
                    record.state = "resuming"
                    record.adopted = True
                    self._queue.append(run_id)
                    self.counters["adopted_resuming"] += 1
            finally:
                ledger.close()
            self._records[run_id] = record
            self.registry.save(record)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, let the queue and active runs empty; ``True``
        when everything finished inside ``timeout``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            while self._queue or self._active:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining if remaining is not None else 0.2)
            return True

    def shutdown(self, timeout: float = 30.0) -> None:
        """Graceful stop: active runs finish (their shards are journaled),
        queued runs stay queued on disk for the next start."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    # -- submission / admission ------------------------------------------

    def submit(
        self,
        config,
        *,
        backend: str | None = None,
        jobs: int = 1,
    ) -> tuple[dict, bool]:
        """Admit one scan job; returns ``(run_view, coalesced)``.

        ``config`` is a :class:`~repro.workload.generator.WildScanConfig`
        or its wire dict (validated strictly either way). A run with the
        same config digest that is queued, running or completed coalesces
        — the caller gets the existing run's view and ``coalesced=True``.
        A previously *failed* run is re-admitted through the normal
        queue. :class:`AdmissionError` rejects submissions while the
        queue is full or the service is draining.
        """
        if isinstance(config, dict):
            config = config_from_wire(config)  # strict: raises ValueError
        if backend is None:
            backend = self.default_backend
        if backend not in BACKENDS:
            raise ServiceError(f"unknown backend {backend!r}; pick one of {BACKENDS}")
        if jobs < 1:
            raise ServiceError(f"jobs must be >= 1, got {jobs}")
        run_id = run_id_for(config)
        with self._cond:
            record = self._records.get(run_id)
            if record is not None and record.state in COALESCE_STATES:
                self.counters["coalesced"] += 1
                return self._view_locked(record), True
            if self._stopping or self._draining:
                self.counters["rejected"] += 1
                raise AdmissionError("service is draining; not admitting new runs")
            if len(self._queue) >= self.max_queue:
                self.counters["rejected"] += 1
                raise AdmissionError(
                    f"admission queue is full ({self.max_queue} queued); "
                    f"retry after the backlog drains"
                )
            if record is not None:  # failed: re-admit
                record.state = "queued"
                record.error = None
                record.finished_at = None
                record.backend = backend
                record.jobs = jobs
                record.submitted_at = time.time()
                self.counters["resubmitted"] += 1
            else:
                record = self.registry.create(config, backend=backend, jobs=jobs)
                self._records[run_id] = record
                self.counters["submitted"] += 1
            self.registry.save(record)
            self._queue.append(run_id)
            self._cond.notify_all()
            return self._view_locked(record), False

    # -- queries ---------------------------------------------------------

    def status(self, run_id: str) -> dict:
        with self._cond:
            return self._view_locked(self._record_locked(run_id))

    def runs(self) -> list[dict]:
        """Every known run's view, most recently submitted first."""
        with self._cond:
            views = [self._view_locked(r) for r in self._records.values()]
        return sorted(views, key=lambda v: v["submitted_at"], reverse=True)

    def wait(self, run_id: str, timeout: float | None = None) -> dict:
        """Block until ``run_id`` completes or fails; returns its view.

        With no ``timeout`` the waiter blocks on the condition outright
        (``Condition.wait(None)``) and wakes only on notify — every
        state transition already calls ``notify_all``, so polling here
        would only burn CPU on idle waiters.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            record = self._record_locked(run_id)
            while record.state not in ("completed", "failed"):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"run {run_id} still {record.state} after {timeout}s"
                        )
                self._cond.wait(remaining)
            return self._view_locked(record)

    def results(self, run_id: str, offset: int = 0, limit: int | None = None) -> dict:
        """One page of a completed run's detections, straight from its ledger.

        Never re-scans: the merged result decodes from the journaled
        bytes (cached in the results tier) and pagination bounds the
        response. ``limit=None`` returns everything from ``offset``.
        """
        if offset < 0:
            raise ServiceError(f"offset must be >= 0, got {offset}")
        if limit is not None and limit < 1:
            raise ServiceError(f"limit must be >= 1 (or None), got {limit}")
        with self._cond:
            record = self._record_locked(run_id)
            state = record.state
            summary = record.summary
        if state != "completed":
            raise ServiceError(
                f"run {run_id} is {state}; results are served from completed "
                f"ledgers only"
            )
        result = self._load_result(run_id)
        detections = result.detections
        end = len(detections) if limit is None else min(offset + limit, len(detections))
        page = detections[offset:end]
        return {
            "run_id": run_id,
            "total_detections": len(detections),
            "offset": offset,
            "count": len(page),
            "next_offset": end if end < len(detections) else None,
            "summary": summary or self._summarize(result),
            "detections": [detection_to_wire(d) for d in page],
        }

    def stats(self) -> dict:
        with self._cond:
            states: dict[str, int] = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
            return {
                "queue_depth": len(self._queue),
                "active": sorted(self._active),
                "executors": self.executors,
                "max_queue": self.max_queue,
                "draining": self._draining or self._stopping,
                "runs_by_state": states,
                "counters": dict(self.counters),
                "warm_cache": self.warm_cache.stats(),
                "results_cache": self.results_cache.stats(),
                "engine_snapshot_store": context_snapshot_stats(),
            }

    # -- internals -------------------------------------------------------

    def _record_locked(self, run_id: str) -> RunRecord:
        record = self._records.get(run_id)
        if record is None:
            raise UnknownRunError(f"unknown run {run_id!r}")
        return record

    def _view_locked(self, record: RunRecord) -> dict:
        view = record.to_dict()
        if record.state in ("queued", "resuming"):
            try:
                view["queue_position"] = list(self._queue).index(record.run_id) + 1
            except ValueError:
                view["queue_position"] = None
        return view

    @staticmethod
    def _summarize(result) -> dict:
        return {
            "total_transactions": result.total_transactions,
            "detected": result.detected_count,
            "true_positives": result.true_positives,
            "precision": result.precision,
            "rows": {
                name: [row.n, row.tp, row.fp] for name, row in result.rows.items()
            },
        }

    def _load_result(self, run_id: str):
        """The merged ``WildScanResult`` for a completed run, via the
        results cache or a fresh decode of the run's ledger."""
        result = self.results_cache.get(run_id)
        if result is not None:
            return result
        from ..runtime.ledger import RunLedger

        with RunLedger.open(self.registry.ledger_path(run_id)) as ledger:
            result = ledger.merge()
        self.results_cache.put(run_id, result)
        return result

    # -- execution tier --------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait(0.2)
                if self._stopping:
                    return
                run_id = self._queue.popleft()
                record = self._records[run_id]
                record.state = "running"
                record.started_at = time.time()
                self._active.add(run_id)
                self.registry.save(record)
                self._cond.notify_all()
            error: str | None = None
            try:
                self._execute(record)
            except Exception as exc:  # a failing run must not kill the pool
                error = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
            with self._cond:
                self._active.discard(run_id)
                if error is not None:
                    record.state = "failed"
                    record.error = error
                    self.counters["failed"] += 1
                else:
                    record.state = "completed"
                    self.counters["completed"] += 1
                record.finished_at = time.time()
                self.registry.save(record)
                self._cond.notify_all()

    def _execute(self, record: RunRecord) -> None:
        """Run one admitted job through its backend, journaled."""
        from dataclasses import replace

        from ..runtime.ledger import RunLedger

        config = config_from_wire(record.config)
        if record.jobs != 1 and record.backend in ("batch", "stream"):
            config = replace(config, jobs=record.jobs)
        _, shard_count = build_full_schedule(config)
        record.shard_count = shard_count
        record.warm_hits, record.warm_misses = self._prime_warm(shard_count)

        ledger = RunLedger.resume_or_create(
            self.registry.ledger_path(record.run_id), config, shard_count
        )
        try:
            if record.backend == "stream":
                from ..engine.stream import StreamEngine

                result = StreamEngine(config, ledger=ledger).run().result
            elif record.backend == "cluster":
                from ..cluster.local import run_cluster_scan

                result, _stats = run_cluster_scan(
                    config,
                    workers=0,
                    autoscale=True,
                    max_workers=self.cluster_workers,
                    ledger=ledger,
                )
            else:
                from ..engine.scan import ScanEngine

                result = ScanEngine(config, ledger=ledger).run()
            record.shards_resumed = ledger.resumed_count
            record.shards_recorded = ledger.recorded_count
        finally:
            ledger.close()
        self._harvest_warm(shard_count)
        record.summary = self._summarize(result)
        self.results_cache.put(record.run_id, result)

    def _prime_warm(self, shard_count: int) -> tuple[int, int]:
        """Install every resident snapshot this run's shards will want
        into the engine's process-level store; returns ``(hits, misses)``."""
        hits = misses = 0
        for index in range(shard_count):
            name = shard_chain_name(index, shard_count)
            snapshot = self.warm_cache.get(name)
            if snapshot is not None:
                install_context_snapshot(snapshot)
                hits += 1
            else:
                misses += 1
        with self._cond:
            self.counters["warm_hits"] += hits
            self.counters["warm_misses"] += misses
        return hits, misses

    def _harvest_warm(self, shard_count: int) -> None:
        """Lift the snapshots a finished run built into the TTL tier
        (refreshing the deadline of ones it reused)."""
        for index in range(shard_count):
            snapshot = context_snapshot_for(index, shard_count)
            if snapshot is not None:
                self.warm_cache.put(snapshot.chain_name, snapshot)
