"""Sharded parallel scan engine for the wild-scan workload.

Splits the deterministic wild-scan schedule across worker processes and
merges the per-shard results; the merged output is byte-identical for
any worker count (see :mod:`repro.engine.scan` for the contract).
"""

from .bench import run_wildscan_bench, write_artifact
from .plan import (
    DEFAULT_SHARD_COUNT,
    MIN_SHARDED_POPULATION,
    build_schedule,
    population_size,
    resolve_shard_count,
    shard_schedule,
    shard_seed,
)
from .scan import ScanEngine, ShardResult

__all__ = [
    "ScanEngine",
    "ShardResult",
    "build_schedule",
    "population_size",
    "resolve_shard_count",
    "shard_schedule",
    "shard_seed",
    "run_wildscan_bench",
    "write_artifact",
    "DEFAULT_SHARD_COUNT",
    "MIN_SHARDED_POPULATION",
]
