"""Sharded parallel scan engine for the wild-scan workload.

Splits the deterministic wild-scan schedule across worker processes and
merges the per-shard results; the merged output is byte-identical for
any worker count (see :mod:`repro.engine.scan` for the contract). The
same shard machinery also runs as a streaming pipeline over a live block
stream (:mod:`repro.engine.stream`) with the identical-results guarantee.
"""

from .bench import (
    run_cluster_bench,
    run_stream_bench,
    run_wildscan_bench,
    write_artifact,
)
from .plan import (
    DEFAULT_SHARD_COUNT,
    MIN_SHARDED_POPULATION,
    build_schedule,
    population_size,
    resolve_shard_count,
    shard_of,
    shard_schedule,
    shard_seed,
)
from .scan import ScanEngine, ShardResult, merge_shard_results
from .stream import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_QUEUE_DEPTH,
    BlockStats,
    StreamBlock,
    StreamEngine,
    StreamResult,
    blocks_from_explorer,
    schedule_block_stream,
    screen_blocks,
)
from .wire import (
    config_from_wire,
    config_to_wire,
    shard_result_from_wire,
    shard_result_to_wire,
)

__all__ = [
    "ScanEngine",
    "ShardResult",
    "merge_shard_results",
    "blocks_from_explorer",
    "config_to_wire",
    "config_from_wire",
    "shard_result_to_wire",
    "shard_result_from_wire",
    "StreamBlock",
    "StreamEngine",
    "StreamResult",
    "BlockStats",
    "build_schedule",
    "population_size",
    "resolve_shard_count",
    "shard_of",
    "shard_schedule",
    "shard_seed",
    "schedule_block_stream",
    "screen_blocks",
    "run_wildscan_bench",
    "run_stream_bench",
    "run_cluster_bench",
    "write_artifact",
    "DEFAULT_SHARD_COUNT",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_QUEUE_DEPTH",
    "MIN_SHARDED_POPULATION",
]
