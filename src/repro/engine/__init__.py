"""Sharded parallel scan engine for the wild-scan workload.

Splits the deterministic wild-scan schedule across worker processes and
merges the per-shard results; the merged output is byte-identical for
any worker count (see :mod:`repro.engine.scan` for the contract). The
same shard machinery also runs as a streaming pipeline over a live block
stream (:mod:`repro.engine.stream`) with the identical-results guarantee.
"""

from .bench import run_stream_bench, run_wildscan_bench, write_artifact
from .plan import (
    DEFAULT_SHARD_COUNT,
    MIN_SHARDED_POPULATION,
    build_schedule,
    population_size,
    resolve_shard_count,
    shard_of,
    shard_schedule,
    shard_seed,
)
from .scan import ScanEngine, ShardResult
from .stream import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_QUEUE_DEPTH,
    BlockStats,
    StreamBlock,
    StreamEngine,
    StreamResult,
    schedule_block_stream,
    screen_blocks,
)

__all__ = [
    "ScanEngine",
    "ShardResult",
    "StreamBlock",
    "StreamEngine",
    "StreamResult",
    "BlockStats",
    "build_schedule",
    "population_size",
    "resolve_shard_count",
    "shard_of",
    "shard_schedule",
    "shard_seed",
    "schedule_block_stream",
    "screen_blocks",
    "run_wildscan_bench",
    "run_stream_bench",
    "write_artifact",
    "DEFAULT_SHARD_COUNT",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_QUEUE_DEPTH",
    "MIN_SHARDED_POPULATION",
]
