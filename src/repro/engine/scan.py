"""Sharded parallel execution of the wild scan.

``ScanEngine`` turns one :class:`~repro.workload.generator.WildScanConfig`
into a merged :class:`~repro.workload.generator.WildScanResult`:

1. build the canonical seeded schedule (:mod:`repro.engine.plan`);
2. partition it round-robin into ``shards`` shards — a function of
   ``(seed, scale, shards)`` only, never of ``jobs``;
3. execute each shard in its own freshly built ``DeFiWorld`` (its chain
   is namespaced by shard index so addresses and tx hashes cannot
   collide across shards), sequentially in-process at ``jobs=1`` or on a
   process pool at ``jobs>1``;
4. merge the shard results in shard-index order.

Because each shard's world, RNG stream and task list are derived purely
from ``(seed, shard_index)``, the merged result is byte-identical for
any ``jobs`` value — parallelism is an execution detail, not part of the
result's identity. When process pools are unavailable (sandboxed
environments), the engine silently degrades to in-process execution with
identical output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..chain.errors import ChainError
from ..world import DeFiWorld, ETHEREUM_PROFILE
from .plan import (
    Task,
    build_schedule,
    resolve_shard_count,
    shard_schedule,
    shard_seed,
)

__all__ = ["ScanEngine", "ShardResult"]


@dataclass(slots=True)
class ShardResult:
    """One shard's share of the scan, ready to merge (picklable)."""

    shard_index: int
    total_transactions: int = 0
    detections: list = field(default_factory=list)
    #: pattern name -> (n, tp, fp)
    row_counts: dict = field(default_factory=dict)


def _shard_profile(shard_index: int, shard_count: int):
    """The chain profile for one shard's world.

    Multi-shard runs namespace the chain (and therefore every generated
    address and tx hash) by shard index; a single-shard run keeps the
    plain profile so it is indistinguishable from a classic sequential
    scan.
    """
    if shard_count == 1:
        return ETHEREUM_PROFILE
    return replace(
        ETHEREUM_PROFILE, chain_name=f"{ETHEREUM_PROFILE.chain_name}-s{shard_index}"
    )


def run_shard(args: tuple) -> ShardResult:
    """Worker entry point: build one shard's world and scan its tasks.

    Module-level (not a method) so it pickles under every multiprocessing
    start method.
    """
    cfg, shard_index, shard_count, tasks = args
    # local imports keep worker startup lean under the spawn start method
    from ..leishen.heuristics import YieldAggregatorHeuristic
    from ..leishen.profit import ProfitAnalyzer
    from ..workload.attacks import ATTACK_CLUSTERS, WildAttackInjector
    from ..workload.generator import PatternRow
    from ..workload.profiles import (
        BENIGN_PROFILES,
        WildMarket,
        profile_migration,
        profile_yield_strategy,
    )

    rng = random.Random(shard_seed(cfg.seed, shard_index))
    world = DeFiWorld(profile=_shard_profile(shard_index, shard_count))
    world.chain.keep_history = cfg.keep_history
    market = WildMarket(world, rng)
    injector = WildAttackInjector(market, rng, cfg.scale)
    if cfg.pattern_config is not None:
        detector = world.detector(patterns=cfg.pattern_config)
    else:
        detector = world.detector()
    heuristic = YieldAggregatorHeuristic(detector.tagger)
    analyzer = ProfitAnalyzer(world.registry)

    result = ShardResult(shard_index=shard_index)
    rows = {name: PatternRow(name) for name in ("KRP", "SBS", "MBS")}
    for task in tasks:
        kind = task[0]
        try:
            if kind == "attack":
                _, cluster_index, attacker_id, contract_id, asset_id, month = task
                labeled = injector.execute(
                    ATTACK_CLUSTERS[cluster_index], attacker_id, contract_id,
                    asset_id, month,
                )
            elif kind == "migration":
                labeled = profile_migration(market)
            elif kind == "strategy":
                labeled = profile_yield_strategy(market, aggregator_initiated=True)
            else:  # benign
                labeled = BENIGN_PROFILES[task[1]][2](market)
        except ChainError:
            # a reverted transaction still counts toward the population;
            # LeiShen skips failed transactions, as on the real chain.
            result.total_transactions += 1
            continue
        result.total_transactions += 1
        detect_into(cfg, labeled, detector, heuristic, analyzer,
                    result.detections, rows)
    result.row_counts = {
        name: [row.n, row.tp, row.fp] for name, row in rows.items()
    }
    return result


def detect_into(cfg, labeled, detector, heuristic, analyzer, detections, rows) -> None:
    """Run detection + paper-style manual verification on one transaction,
    appending to ``detections`` and updating the Table V ``rows``."""
    from ..workload.generator import Detection

    report = detector.analyze(labeled.trace)
    if report is None:
        return  # not identified as a flash loan transaction
    if cfg.with_heuristic:
        report = heuristic.apply(labeled.trace, report)
    if not report.is_attack:
        return
    patterns = tuple(sorted(p.name for p in report.patterns))
    truth = labeled.truth
    profit_usd = borrowed_usd = 0.0
    if truth.is_attack:
        accounts = [a for a in (truth.attacker, truth.attack_contract) if a is not None]
        breakdown = analyzer.breakdown(labeled.trace, report.flash_loans, accounts)
        profit_usd, borrowed_usd = breakdown.profit_usd, breakdown.borrowed_usd
    detections.append(
        Detection(
            tx_hash=labeled.trace.tx_hash,
            patterns=patterns,
            truth=truth,
            profit_usd=profit_usd,
            borrowed_usd=borrowed_usd,
        )
    )
    for name in patterns:
        row = rows[name]
        row.n += 1
        if truth.is_attack and name in truth.patterns:
            row.tp += 1
        else:
            row.fp += 1


class ScanEngine:
    """Shards the wild scan across worker processes and merges the results."""

    def __init__(self, config) -> None:
        self.config = config

    # ------------------------------------------------------------------

    def run(self):
        cfg = self.config
        tasks = build_schedule(cfg.scale, cfg.seed)
        shard_count = resolve_shard_count(cfg.shards, len(tasks))
        parts = shard_schedule(tasks, shard_count)
        payloads = [(cfg, index, shard_count, part) for index, part in enumerate(parts)]
        jobs = max(1, cfg.jobs)
        if jobs == 1 or shard_count == 1:
            outcomes = [run_shard(payload) for payload in payloads]
        else:
            outcomes = self._run_parallel(payloads, min(jobs, shard_count))
        return self._merge(outcomes)

    # ------------------------------------------------------------------

    @staticmethod
    def _run_parallel(payloads: list[tuple], workers: int) -> list[ShardResult]:
        import multiprocessing

        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        try:
            with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                outcomes = list(pool.map(run_shard, payloads))
        except (OSError, PermissionError, BrokenProcessPool):
            # restricted environments (no process spawning): same results,
            # computed in-process.
            outcomes = [run_shard(payload) for payload in payloads]
        return sorted(outcomes, key=lambda outcome: outcome.shard_index)

    def _merge(self, outcomes: list[ShardResult]):
        from ..workload.generator import PatternRow, WildScanResult

        result = WildScanResult(
            config=self.config,
            rows={name: PatternRow(name) for name in ("KRP", "SBS", "MBS")},
        )
        for outcome in outcomes:
            result.total_transactions += outcome.total_transactions
            result.detections.extend(outcome.detections)
            for name, (n, tp, fp) in outcome.row_counts.items():
                row = result.rows[name]
                row.n += n
                row.tp += tp
                row.fp += fp
        return result
