"""Sharded parallel execution of the wild scan.

``ScanEngine`` turns one :class:`~repro.workload.generator.WildScanConfig`
into a merged :class:`~repro.workload.generator.WildScanResult`:

1. build the canonical seeded schedule (:mod:`repro.engine.plan`);
2. partition it round-robin into ``shards`` shards — a function of
   ``(seed, scale, shards)`` only, never of ``jobs``;
3. execute each shard in its own freshly built ``DeFiWorld`` (its chain
   is namespaced by shard index so addresses and tx hashes cannot
   collide across shards), sequentially in-process at ``jobs=1`` or on a
   process pool at ``jobs>1``;
4. merge the shard results in shard-index order.

Because each shard's world, RNG stream and task list are derived purely
from ``(seed, shard_index)``, the merged result is byte-identical for
any ``jobs`` value — parallelism is an execution detail, not part of the
result's identity. When process pools are unavailable (sandboxed
environments), the engine silently degrades to in-process execution with
identical output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..chain.errors import ChainError
from ..world import DeFiWorld, ETHEREUM_PROFILE
from .plan import (
    Task,
    build_schedule,
    resolve_shard_count,
    shard_schedule,
    shard_seed,
)

__all__ = [
    "ScanEngine",
    "ShardContext",
    "ShardResult",
    "build_replay_context",
    "build_shard_context",
    "clear_tag_snapshots",
    "detect_task",
    "execute_task",
    "finalize_shard",
    "merge_shard_results",
    "run_shard",
    "tag_snapshot_for",
]


@dataclass(slots=True)
class ShardResult:
    """One shard's share of the scan, ready to merge (picklable)."""

    shard_index: int
    total_transactions: int = 0
    detections: list = field(default_factory=list)
    #: pattern name -> (n, tp, fp)
    row_counts: dict = field(default_factory=dict)


def _shard_profile(shard_index: int, shard_count: int):
    """The chain profile for one shard's world.

    Multi-shard runs namespace the chain (and therefore every generated
    address and tx hash) by shard index; a single-shard run keeps the
    plain profile so it is indistinguishable from a classic sequential
    scan.
    """
    if shard_count == 1:
        return ETHEREUM_PROFILE
    return replace(
        ETHEREUM_PROFILE, chain_name=f"{ETHEREUM_PROFILE.chain_name}-s{shard_index}"
    )


@dataclass(slots=True)
class ShardContext:
    """One shard's live execution state: its world, detector stack and
    accumulating result. Shared by the batch path (:func:`run_shard`) and
    the streaming path (:mod:`repro.engine.stream`), so both execute a
    shard's tasks byte-identically."""

    cfg: object
    shard_index: int
    market: object
    injector: object
    detector: object
    heuristic: object
    analyzer: object
    result: ShardResult
    rows: dict


#: Process-level cache of tag-sync snapshots keyed by
#: ``(seed, scale, shard_index, shard_count)``. A shard's post-build
#: tagger state is a pure function of that key, so any rebuild of the
#: same shard in this process (bench repeats, in-process pool fallback,
#: cluster requeues on a reused worker) warm-starts from the first
#: build's snapshot instead of re-scanning creations and labels.
_TAG_SNAPSHOTS: dict[tuple, dict] = {}
_TAG_SNAPSHOT_LIMIT = 256


def clear_tag_snapshots() -> None:
    """Drop the process-level tag-snapshot cache (test isolation)."""
    _TAG_SNAPSHOTS.clear()


def tag_snapshot_for(
    seed: int, scale: float, shard_index: int, shard_count: int
) -> dict | None:
    """The cached tag-sync snapshot for one shard build, if this process
    has built that shard before (the cluster coordinator attaches it to
    assignments so workers can skip the cold label sync)."""
    return _TAG_SNAPSHOTS.get((seed, scale, shard_index, shard_count))


def build_shard_context(
    cfg,
    shard_index: int,
    shard_count: int,
    tag_snapshot: dict | None = None,
) -> ShardContext:
    """Build one shard's world and detector stack from ``(cfg, shard)``.

    Everything downstream is a pure function of these inputs, which is
    what makes batch and streaming execution interchangeable.

    ``tag_snapshot`` optionally warm-starts the detector's account
    tagger (see :meth:`repro.leishen.tagging.AccountTagger`); a snapshot
    that does not match the freshly built chain is ignored, so a stale
    snapshot can never change the result. Snapshots are also cached
    per-process by ``(seed, scale, shard, shard_count)`` so repeated
    builds of the same shard skip the cold label sync automatically.
    """
    # local imports keep worker startup lean under the spawn start method
    from ..leishen.heuristics import YieldAggregatorHeuristic
    from ..leishen.profit import ProfitAnalyzer
    from ..workload.attacks import WildAttackInjector
    from ..workload.generator import PatternRow
    from ..workload.profiles import WildMarket

    rng = random.Random(shard_seed(cfg.seed, shard_index))
    world = DeFiWorld(profile=_shard_profile(shard_index, shard_count))
    world.chain.keep_history = cfg.keep_history
    market = WildMarket(world, rng)
    injector = WildAttackInjector(market, rng, cfg.scale)
    snapshot_key = (cfg.seed, cfg.scale, shard_index, shard_count)
    if tag_snapshot is None:
        tag_snapshot = _TAG_SNAPSHOTS.get(snapshot_key)
    if cfg.pattern_config is not None:
        detector = world.detector(patterns=cfg.pattern_config, tag_snapshot=tag_snapshot)
    else:
        detector = world.detector(tag_snapshot=tag_snapshot)
    if snapshot_key not in _TAG_SNAPSHOTS:
        if len(_TAG_SNAPSHOTS) >= _TAG_SNAPSHOT_LIMIT:
            _TAG_SNAPSHOTS.pop(next(iter(_TAG_SNAPSHOTS)))
        _TAG_SNAPSHOTS[snapshot_key] = detector.tagger.label_sync_snapshot()
    return ShardContext(
        cfg=cfg,
        shard_index=shard_index,
        market=market,
        injector=injector,
        detector=detector,
        heuristic=YieldAggregatorHeuristic(detector.tagger),
        analyzer=ProfitAnalyzer(world.registry),
        result=ShardResult(shard_index=shard_index),
        rows={name: PatternRow(name) for name in ("KRP", "SBS", "MBS")},
    )


def build_replay_context(cfg, shard_index: int, detector) -> ShardContext:
    """A slim shard context for replaying recorded history.

    Replay shards carry no generated world: ``("replay", trace)`` tasks
    only run detection, against a ``detector`` the caller built over the
    chain that recorded the traces (a fresh world's tagger would not know
    that chain's labels). Recorded history has no ground truth, so replay
    detections count as unverified in the Table V rows.
    """
    from ..leishen.heuristics import YieldAggregatorHeuristic
    from ..workload.generator import PatternRow

    return ShardContext(
        cfg=cfg,
        shard_index=shard_index,
        market=None,
        injector=None,
        detector=detector,
        heuristic=YieldAggregatorHeuristic(detector.tagger),
        analyzer=None,
        result=ShardResult(shard_index=shard_index),
        rows={name: PatternRow(name) for name in ("KRP", "SBS", "MBS")},
    )


def execute_task(ctx: ShardContext, task: Task):
    """Execute one schedule task against the shard's world.

    Returns the labeled transaction, or ``None`` when it reverted; either
    way the transaction counts toward the shard's population.
    ``("replay", trace)`` tasks carry an already-executed transaction and
    only need labeling for the detection step.
    """
    from ..workload.attacks import ATTACK_CLUSTERS
    from ..workload.profiles import (
        BENIGN_PROFILES,
        GroundTruth,
        LabeledTrace,
        profile_migration,
        profile_yield_strategy,
    )

    kind = task[0]
    if kind == "replay":
        ctx.result.total_transactions += 1
        return LabeledTrace(
            trace=task[1], truth=GroundTruth(is_attack=False, profile="replay")
        )
    try:
        if kind == "attack":
            _, cluster_index, attacker_id, contract_id, asset_id, month = task
            labeled = ctx.injector.execute(
                ATTACK_CLUSTERS[cluster_index], attacker_id, contract_id,
                asset_id, month,
            )
        elif kind == "migration":
            labeled = profile_migration(ctx.market)
        elif kind == "strategy":
            labeled = profile_yield_strategy(ctx.market, aggregator_initiated=True)
        else:  # benign
            labeled = BENIGN_PROFILES[task[1]][2](ctx.market)
    except ChainError:
        # a reverted transaction still counts toward the population;
        # LeiShen skips failed transactions, as on the real chain.
        ctx.result.total_transactions += 1
        return None
    ctx.result.total_transactions += 1
    return labeled


def detect_task(ctx: ShardContext, labeled) -> None:
    """Run detection on one executed transaction, into the shard result."""
    detect_into(ctx.cfg, labeled, ctx.detector, ctx.heuristic, ctx.analyzer,
                ctx.result.detections, ctx.rows)


def finalize_shard(ctx: ShardContext) -> ShardResult:
    """Freeze the shard's Table V counters and return its result."""
    ctx.result.row_counts = {
        name: [row.n, row.tp, row.fp] for name, row in ctx.rows.items()
    }
    return ctx.result


def run_shard(args: tuple) -> ShardResult:
    """Worker entry point: build one shard's world and scan its tasks.

    Module-level (not a method) so it pickles under every multiprocessing
    start method. The payload is ``(cfg, shard_index, shard_count,
    tasks)`` with an optional fifth element: a tag-sync snapshot that
    warm-starts the shard's account tagger (ignored when it does not
    match the freshly built chain).
    """
    cfg, shard_index, shard_count, tasks = args[:4]
    tag_snapshot = args[4] if len(args) > 4 else None
    ctx = build_shard_context(cfg, shard_index, shard_count, tag_snapshot=tag_snapshot)
    for task in tasks:
        labeled = execute_task(ctx, task)
        if labeled is not None:
            detect_task(ctx, labeled)
    return finalize_shard(ctx)


def merge_shard_results(config, outcomes: list[ShardResult]):
    """Merge shard results into one ``WildScanResult``, in shard-index order.

    The single merge implementation behind the batch engine, the streaming
    merger and the cluster coordinator: because it orders by
    ``shard_index`` before summing, the merged result is byte-identical no
    matter which process, host or completion order produced the shards.
    """
    from ..workload.generator import PatternRow, WildScanResult

    result = WildScanResult(
        config=config,
        rows={name: PatternRow(name) for name in ("KRP", "SBS", "MBS")},
    )
    for outcome in sorted(outcomes, key=lambda outcome: outcome.shard_index):
        result.total_transactions += outcome.total_transactions
        result.detections.extend(outcome.detections)
        for name, (n, tp, fp) in outcome.row_counts.items():
            row = result.rows[name]
            row.n += n
            row.tp += tp
            row.fp += fp
    return result


def detect_into(cfg, labeled, detector, heuristic, analyzer, detections, rows) -> None:
    """Run detection + paper-style manual verification on one transaction,
    appending to ``detections`` and updating the Table V ``rows``."""
    from ..workload.generator import Detection

    report = detector.analyze(labeled.trace)
    if report is None:
        return  # not identified as a flash loan transaction
    if cfg.with_heuristic:
        report = heuristic.apply(labeled.trace, report)
    if not report.is_attack:
        return
    patterns = tuple(sorted(p.name for p in report.patterns))
    truth = labeled.truth
    profit_usd = borrowed_usd = 0.0
    if truth.is_attack:
        accounts = [a for a in (truth.attacker, truth.attack_contract) if a is not None]
        breakdown = analyzer.breakdown(labeled.trace, report.flash_loans, accounts)
        profit_usd, borrowed_usd = breakdown.profit_usd, breakdown.borrowed_usd
    detections.append(
        Detection(
            tx_hash=labeled.trace.tx_hash,
            patterns=patterns,
            truth=truth,
            profit_usd=profit_usd,
            borrowed_usd=borrowed_usd,
        )
    )
    for name in patterns:
        row = rows[name]
        row.n += 1
        if truth.is_attack and name in truth.patterns:
            row.tp += 1
        else:
            row.fp += 1


class ScanEngine:
    """Shards the wild scan across worker processes and merges the results.

    ``ledger`` (a path or an open :class:`repro.runtime.RunLedger`)
    journals every completed shard durably: a killed run resumes by
    loading the journal and scheduling only the remaining shards, and
    the final merge is decoded *from the ledger*, so a resumed result is
    byte-identical to an uninterrupted one.
    """

    def __init__(self, config, *, ledger=None) -> None:
        self.config = config
        self._ledger_spec = ledger
        #: the resolved :class:`repro.runtime.RunLedger` after ``run()``
        #: (``None`` for unjournaled runs); exposes ``resumed_count`` /
        #: ``recorded_count`` for reporting.
        self.ledger = None

    # ------------------------------------------------------------------

    def run(self):
        cfg = self.config
        tasks = build_schedule(cfg.scale, cfg.seed)
        shard_count = resolve_shard_count(cfg.shards, len(tasks))
        ledger = self._resolve_ledger(shard_count)
        parts = shard_schedule(tasks, shard_count)
        done = set(ledger.completed_payloads) if ledger is not None else ()
        payloads = [
            (cfg, index, shard_count, part)
            for index, part in enumerate(parts)
            if index not in done
        ]
        record = ledger.record if ledger is not None else None
        jobs = cfg.jobs  # validated >= 1 by WildScanConfig
        if not payloads:
            outcomes: list[ShardResult] = []
        elif jobs == 1 or len(payloads) == 1:
            outcomes = []
            for payload in payloads:
                outcome = run_shard(payload)
                if record is not None:
                    record(outcome)
                outcomes.append(outcome)
        else:
            outcomes = self._run_parallel(
                payloads, min(jobs, len(payloads)), on_shard=record
            )
        if ledger is not None:
            return ledger.merge()
        return self._merge(outcomes)

    def _resolve_ledger(self, shard_count: int):
        """Normalize the ``ledger`` argument into an open ``RunLedger``.

        Lazy import: :mod:`repro.runtime` imports this module at load
        time, so the dependency must stay one-directional at import time.
        """
        if self._ledger_spec is None:
            self.ledger = None
            return None
        from ..runtime.ledger import ensure_ledger

        self.ledger = ensure_ledger(self._ledger_spec, self.config, shard_count)
        return self.ledger

    # ------------------------------------------------------------------

    @staticmethod
    def _run_parallel(
        payloads: list[tuple], workers: int, on_shard=None
    ) -> list[ShardResult]:
        """Fan the shard payloads over a process pool.

        Pool breakage (restricted environments, OOM-killed workers) falls
        back to in-process execution — but only for the shards that did
        not complete; finished shard results are kept. A genuine exception
        raised *inside* a worker is not pool breakage and propagates.
        ``on_shard`` (the ledger's ``record``) runs in this process as
        each shard result lands, in completion order, so a kill mid-run
        leaves every finished shard journaled.
        """
        import multiprocessing

        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        completed: dict[int, ShardResult] = {}
        try:
            with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                futures: dict[int, object] = {}
                try:
                    for index, payload in enumerate(payloads):
                        futures[index] = pool.submit(run_shard, payload)
                except (OSError, PermissionError):
                    futures.clear()  # process spawning denied outright
                for index, future in futures.items():
                    try:
                        completed[index] = future.result()
                    except BrokenProcessPool:
                        break  # pool died; the rest re-runs in-process below
                    if on_shard is not None:
                        on_shard(completed[index])
        except (OSError, PermissionError, BrokenProcessPool):
            pass  # pool setup/teardown failure; completed shards are kept
        outcomes = []
        for index, payload in enumerate(payloads):
            if index in completed:
                outcomes.append(completed[index])
                continue
            outcome = run_shard(payload)
            if on_shard is not None:
                on_shard(outcome)
            outcomes.append(outcome)
        return sorted(outcomes, key=lambda outcome: outcome.shard_index)

    def _merge(self, outcomes: list[ShardResult]):
        return merge_shard_results(self.config, outcomes)
