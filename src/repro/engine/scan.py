"""Sharded parallel execution of the wild scan.

``ScanEngine`` turns one :class:`~repro.workload.generator.WildScanConfig`
into a merged :class:`~repro.workload.generator.WildScanResult`:

1. build the canonical seeded schedule (:mod:`repro.engine.plan`);
2. partition it round-robin into ``shards`` shards — a function of
   ``(seed, scale, shards)`` only, never of ``jobs``;
3. execute each shard in its own freshly built ``DeFiWorld`` (its chain
   is namespaced by shard index so addresses and tx hashes cannot
   collide across shards), sequentially in-process at ``jobs=1`` or on a
   process pool at ``jobs>1``;
4. merge the shard results in shard-index order.

Because each shard's world, RNG stream and task list are derived purely
from ``(seed, shard_index)``, the merged result is byte-identical for
any ``jobs`` value — parallelism is an execution detail, not part of the
result's identity. When process pools are unavailable (sandboxed
environments), the engine silently degrades to in-process execution with
identical output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from time import perf_counter_ns

from ..chain.errors import ChainError
from ..world import DeFiWorld, ETHEREUM_PROFILE
from .plan import (
    Task,
    build_full_schedule,
    shard_schedule,
    shard_seed,
)

__all__ = [
    "ScanEngine",
    "ShardContext",
    "ShardContextSnapshot",
    "ShardResult",
    "SnapshotStore",
    "build_replay_context",
    "build_shard_context",
    "clear_context_snapshots",
    "clear_tag_snapshots",
    "context_snapshot_for",
    "context_snapshot_stats",
    "detect_task",
    "execute_task",
    "finalize_shard",
    "install_context_snapshot",
    "merge_shard_results",
    "run_shard",
    "run_shard_batch",
    "set_context_snapshot_limit",
    "shard_chain_name",
    "tag_snapshot_for",
]


@dataclass(slots=True)
class ShardResult:
    """One shard's share of the scan, ready to merge (picklable)."""

    shard_index: int
    total_transactions: int = 0
    detections: list = field(default_factory=list)
    #: pattern name -> (n, tp, fp)
    row_counts: dict = field(default_factory=dict)
    #: per-stage profile payload (:mod:`repro.runtime.profile`) when the
    #: shard ran with ``config.profile`` — observability only, so it is
    #: deliberately excluded from the wire schema and the run ledger and
    #: can never perturb a merged result or a resumable journal.
    profile: dict | None = None


def _shard_profile(shard_index: int, shard_count: int):
    """The chain profile for one shard's world.

    Multi-shard runs namespace the chain (and therefore every generated
    address and tx hash) by shard index; a single-shard run keeps the
    plain profile so it is indistinguishable from a classic sequential
    scan.
    """
    if shard_count == 1:
        return ETHEREUM_PROFILE
    return replace(
        ETHEREUM_PROFILE, chain_name=f"{ETHEREUM_PROFILE.chain_name}-s{shard_index}"
    )


@dataclass(slots=True)
class ShardContext:
    """One shard's live execution state: its world, detector stack and
    accumulating result. Shared by the batch path (:func:`run_shard`) and
    the streaming path (:mod:`repro.engine.stream`), so both execute a
    shard's tasks byte-identically."""

    cfg: object
    shard_index: int
    market: object
    injector: object
    detector: object
    heuristic: object
    analyzer: object
    result: ShardResult
    rows: dict
    #: optional :class:`~repro.leishen.prescreen.PreScreen` consulted by
    #: :func:`detect_task` before full detection (``None`` when the
    #: config disables screening or the context has no world).
    prescreen: object = None
    #: optional :class:`~repro.runtime.profile.StageProfiler`; ``None``
    #: keeps the scan loop free of timing overhead.
    profiler: object = None


@dataclass(slots=True)
class ShardContextSnapshot:
    """Everything needed to warm-start one shard-world build.

    Extends the PR-5 tag-cache snapshot into a full context checkpoint:
    the tagger's label-sync state, the pre-screen's harvested address
    table, and the detector construction inputs recorded for validation.
    The capsule is plain-dict/JSON-safe so the cluster coordinator can
    ship it inside an assignment message and a cold worker can skip both
    the label sync and the pre-screen harvest.

    Both consumers re-validate against the chain they actually built
    (version counters inside ``tag_snapshot``/``prescreen``), so a stale
    or mismatched snapshot is silently ignored and can never change a
    result byte — warm-starting is purely an amortization.
    """

    #: the shard world's chain name — the snapshot's identity. The world
    #: build consumes no RNG, so the post-build chain state (creations,
    #: labels, contracts) is a pure function of the chain name alone,
    #: independent of seed/scale/shard_count. One snapshot therefore
    #: warms every configuration whose shard maps to the same name.
    chain_name: str
    #: tagger label-sync state (:meth:`AccountTagger.label_sync_snapshot`).
    tag_snapshot: dict
    #: pre-screen address table (:meth:`PreScreen.to_wire`), or ``None``
    #: when the originating build ran with screening disabled.
    prescreen: dict | None = None
    #: detector construction inputs at snapshot time, for validation and
    #: observability (never replayed into a build).
    build_params: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {
            "chain_name": self.chain_name,
            "tag_snapshot": self.tag_snapshot,
            "prescreen": self.prescreen,
            "build_params": dict(self.build_params),
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "ShardContextSnapshot | None":
        """Decode a shipped snapshot; ``None`` for malformed payloads
        (a worker on a newer/older peer just cold-builds instead)."""
        if not isinstance(payload, dict):
            return None
        chain_name = payload.get("chain_name")
        tag_snapshot = payload.get("tag_snapshot")
        if not isinstance(chain_name, str) or not isinstance(tag_snapshot, dict):
            return None
        prescreen = payload.get("prescreen")
        if prescreen is not None and not isinstance(prescreen, dict):
            prescreen = None
        build_params = payload.get("build_params")
        return cls(
            chain_name=chain_name,
            tag_snapshot=tag_snapshot,
            prescreen=prescreen,
            build_params=dict(build_params) if isinstance(build_params, dict) else {},
        )


class SnapshotStore:
    """Bounded LRU of :class:`ShardContextSnapshot` keyed by chain name.

    The process-level warm-start store behind ``build_shard_context``:
    in a one-shot scan an unbounded dict would be harmless, but a
    long-lived process (:mod:`repro.service`) builds worlds for every
    shard count it is ever asked to run, so the store must evict. A hit
    refreshes recency (true LRU, not FIFO), an insert over
    ``max_entries`` evicts the least recently used entry, and
    ``set_max_entries`` re-bounds a live store, evicting down if needed.
    Hit/miss/eviction counters feed the service's cache stats. All
    operations take an internal lock: the scan service builds shard
    worlds from several executor threads at once.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        import threading
        from collections import OrderedDict

        self._entries: "OrderedDict[str, ShardContextSnapshot]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def get(self, name: str) -> ShardContextSnapshot | None:
        with self._lock:
            snapshot = self._entries.get(name)
            if snapshot is None:
                self.misses += 1
                return None
            self._entries.move_to_end(name)
            self.hits += 1
            return snapshot

    def put(self, name: str, snapshot: ShardContextSnapshot) -> None:
        with self._lock:
            if name in self._entries:
                self._entries.move_to_end(name)
            self._entries[name] = snapshot
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def set_max_entries(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        with self._lock:
            self.max_entries = max_entries
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def names(self) -> list[str]:
        """Resident chain names, least recently used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: Process-level cache of context snapshots keyed by chain name (see
#: :class:`ShardContextSnapshot` for why the name alone is the identity).
#: Any rebuild of a same-named shard world in this process — bench
#: repeats, in-process pool fallback, cluster requeues on a reused
#: worker, *and* different seed/scale runs — warm-starts from the first
#: build instead of re-scanning creations and labels. This store also
#: holds the PR-5 tag-sync snapshots (they ride inside the context
#: snapshot), so one LRU bound covers both.
_CONTEXT_SNAPSHOTS = SnapshotStore()


def clear_context_snapshots() -> None:
    """Drop the process-level context-snapshot cache (test isolation)."""
    _CONTEXT_SNAPSHOTS.clear()


#: Back-compat alias (PR-5 name; same cache, broader contents now).
clear_tag_snapshots = clear_context_snapshots


def set_context_snapshot_limit(max_entries: int) -> None:
    """Re-bound the process-level snapshot store (evicting LRU-first)."""
    _CONTEXT_SNAPSHOTS.set_max_entries(max_entries)


def context_snapshot_stats() -> dict:
    """Hit/miss/eviction counters of the process-level snapshot store."""
    return _CONTEXT_SNAPSHOTS.stats()


def install_context_snapshot(snapshot: ShardContextSnapshot) -> None:
    """Seed the process-level store with a snapshot kept elsewhere.

    The scan service's warm-entity cache re-installs snapshots it held
    across runs (its TTL tier outlives the engine store's LRU bound);
    ``build_shard_context`` re-validates against the freshly built chain
    as always, so installing a stale capsule is safe."""
    _CONTEXT_SNAPSHOTS.put(snapshot.chain_name, snapshot)


def shard_chain_name(shard_index: int, shard_count: int) -> str:
    """The chain name one shard's world will carry — the identity under
    which its context snapshot is cached (and shipped/primed by the
    cluster coordinator and the scan service)."""
    return _shard_profile(shard_index, shard_count).chain_name


_shard_chain_name = shard_chain_name


def context_snapshot_for(
    shard_index: int, shard_count: int
) -> ShardContextSnapshot | None:
    """The cached context snapshot for one shard build, if this process
    has built a world with that shard's chain name before (the cluster
    coordinator attaches it to assignments so workers warm-start)."""
    return _CONTEXT_SNAPSHOTS.get(_shard_chain_name(shard_index, shard_count))


def tag_snapshot_for(
    seed: int, scale: float, shard_index: int, shard_count: int
) -> dict | None:
    """The cached tag-sync snapshot for one shard build (PR-5 API).

    ``seed``/``scale`` are accepted for signature compatibility but do
    not narrow the lookup: the world build consumes no RNG, so the
    snapshot is valid for every seed/scale sharing the chain name.
    """
    del seed, scale  # not part of the build identity
    snapshot = context_snapshot_for(shard_index, shard_count)
    return snapshot.tag_snapshot if snapshot is not None else None


def build_shard_context(
    cfg,
    shard_index: int,
    shard_count: int,
    tag_snapshot: dict | None = None,
    context_snapshot: "ShardContextSnapshot | dict | None" = None,
) -> ShardContext:
    """Build one shard's world and detector stack from ``(cfg, shard)``.

    Everything downstream is a pure function of these inputs, which is
    what makes batch and streaming execution interchangeable.

    ``context_snapshot`` (a :class:`ShardContextSnapshot` or its wire
    dict) warm-starts both the detector's account tagger and the flash
    loan pre-screen; ``tag_snapshot`` is the narrower PR-5 form carrying
    the tagger state only. Either kind is re-validated against the
    freshly built chain and ignored on mismatch, so a stale snapshot can
    never change the result. Builds also consult (and populate) the
    process-level snapshot cache keyed by chain name, so repeated builds
    of a same-named shard world skip the cold syncs automatically.
    """
    # local imports keep worker startup lean under the spawn start method
    from ..leishen.heuristics import YieldAggregatorHeuristic
    from ..leishen.prescreen import PreScreen
    from ..leishen.profit import ProfitAnalyzer
    from ..leishen.registry import enabled_pattern_keys
    from ..workload.attacks import WildAttackInjector
    from ..workload.generator import PatternRow
    from ..workload.profiles import WildMarket

    profiling = bool(getattr(cfg, "profile", False))
    started = perf_counter_ns() if profiling else 0
    rng = random.Random(shard_seed(cfg.seed, shard_index))
    world = DeFiWorld(profile=_shard_profile(shard_index, shard_count))
    world.chain.keep_history = cfg.keep_history
    market = WildMarket(world, rng)
    injector = WildAttackInjector(market, rng, cfg.scale)
    chain_name = world.chain.name
    if isinstance(context_snapshot, dict):
        context_snapshot = ShardContextSnapshot.from_wire(context_snapshot)
    if context_snapshot is None:
        context_snapshot = _CONTEXT_SNAPSHOTS.get(chain_name)
    if context_snapshot is not None and context_snapshot.chain_name != chain_name:
        context_snapshot = None
    if tag_snapshot is None and context_snapshot is not None:
        tag_snapshot = context_snapshot.tag_snapshot
    if cfg.pattern_config is not None:
        detector = world.detector(patterns=cfg.pattern_config, tag_snapshot=tag_snapshot)
    else:
        detector = world.detector(tag_snapshot=tag_snapshot)
    prescreen = None
    if getattr(cfg, "prescreen", True):
        snapshot_table = (
            context_snapshot.prescreen if context_snapshot is not None else None
        )
        if snapshot_table is not None:
            # from_wire validates the table's sync counters against the
            # chain and cold-harvests on any mismatch.
            prescreen = PreScreen.from_wire(snapshot_table, chain=world.chain)
        else:
            prescreen = PreScreen(world.chain)
    if chain_name not in _CONTEXT_SNAPSHOTS:
        _CONTEXT_SNAPSHOTS.put(chain_name, ShardContextSnapshot(
            chain_name=chain_name,
            tag_snapshot=detector.tagger.label_sync_snapshot(),
            prescreen=prescreen.to_wire() if prescreen is not None else None,
            build_params={
                "shard_count": shard_count,
                "keep_history": bool(cfg.keep_history),
                "chain_version": world.chain.version,
            },
        ))
    profiler = None
    if profiling:
        from ..runtime.profile import StageProfiler

        profiler = StageProfiler()
        profiler.add("build_context", perf_counter_ns() - started)
        if tag_snapshot is not None or context_snapshot is not None:
            profiler.count("warm_starts")
        detector.profiler = profiler
    return ShardContext(
        cfg=cfg,
        shard_index=shard_index,
        market=market,
        injector=injector,
        detector=detector,
        heuristic=YieldAggregatorHeuristic(detector.tagger),
        analyzer=ProfitAnalyzer(world.registry),
        result=ShardResult(shard_index=shard_index),
        rows={
            name: PatternRow(name)
            for name in enabled_pattern_keys(cfg.pattern_config)
        },
        prescreen=prescreen,
        profiler=profiler,
    )


def build_replay_context(cfg, shard_index: int, detector) -> ShardContext:
    """A slim shard context for replaying recorded history.

    Replay shards carry no generated world: ``("replay", trace)`` tasks
    only run detection, against a ``detector`` the caller built over the
    chain that recorded the traces (a fresh world's tagger would not know
    that chain's labels). Recorded history has no ground truth, so replay
    detections count as unverified in the Table V rows.
    """
    from ..leishen.heuristics import YieldAggregatorHeuristic
    from ..leishen.registry import enabled_pattern_keys
    from ..workload.generator import PatternRow

    return ShardContext(
        cfg=cfg,
        shard_index=shard_index,
        market=None,
        injector=None,
        detector=detector,
        heuristic=YieldAggregatorHeuristic(detector.tagger),
        analyzer=None,
        result=ShardResult(shard_index=shard_index),
        rows={
            name: PatternRow(name)
            for name in enabled_pattern_keys(cfg.pattern_config)
        },
    )


def execute_task(ctx: ShardContext, task: Task):
    """Execute one schedule task against the shard's world.

    Returns the labeled transaction, or ``None`` when it reverted; either
    way the transaction counts toward the shard's population.
    ``("replay", trace)`` tasks carry an already-executed transaction and
    only need labeling for the detection step.
    """
    from ..workload.attacks import ADVERSARIAL_CLUSTERS, ATTACK_CLUSTERS
    from ..workload.profiles import (
        BENIGN_PROFILES,
        GroundTruth,
        LabeledTrace,
        profile_migration,
        profile_yield_strategy,
    )

    kind = task[0]
    if kind == "replay":
        ctx.result.total_transactions += 1
        return LabeledTrace(
            trace=task[1], truth=GroundTruth(is_attack=False, profile="replay")
        )
    try:
        if kind == "attack":
            _, cluster_index, attacker_id, contract_id, asset_id, month = task
            labeled = ctx.injector.execute(
                ATTACK_CLUSTERS[cluster_index], attacker_id, contract_id,
                asset_id, month,
            )
        elif kind == "adv":
            _, cluster_index, attacker_id, contract_id, asset_id, month = task
            labeled = ctx.injector.execute(
                ADVERSARIAL_CLUSTERS[cluster_index], attacker_id, contract_id,
                asset_id, month,
            )
        elif kind == "split":
            _, group, round_index, n_rounds = task
            labeled = ctx.injector.execute_split(group, round_index, n_rounds)
        elif kind == "migration":
            labeled = profile_migration(ctx.market)
        elif kind == "strategy":
            labeled = profile_yield_strategy(ctx.market, aggregator_initiated=True)
        else:  # benign
            labeled = BENIGN_PROFILES[task[1]][2](ctx.market)
    except ChainError:
        # a reverted transaction still counts toward the population;
        # LeiShen skips failed transactions, as on the real chain.
        ctx.result.total_transactions += 1
        return None
    ctx.result.total_transactions += 1
    return labeled


def detect_task(ctx: ShardContext, labeled):
    """Run detection on one executed transaction, into the shard result.

    Consults the shard's flash-loan pre-screen first: a transaction whose
    raw trace provably contains no borrow skips tagging/simplification
    entirely. Screening only rejects on necessary conditions of the
    provider fingerprints, so the skip never changes a result byte.

    Returns the detector's :class:`~repro.leishen.report.AttackReport`
    (``None`` when the transaction is screened out or not identified as
    a flash loan). The shard result only ever records attacks; the
    report return value is what lets the streaming engine's windowed
    mode observe the simplified trades of *every* flash-loan transaction
    without a second detector pass.
    """
    prescreen = ctx.prescreen
    if prescreen is not None:
        prof = ctx.profiler
        if prof is None:
            if not prescreen.admits(labeled.trace):
                return None
        else:
            started = perf_counter_ns()
            admitted = prescreen.admits(labeled.trace)
            prof.add("prescreen", perf_counter_ns() - started)
            if not admitted:
                prof.count("screened_out")
                return None
    return detect_into(ctx.cfg, labeled, ctx.detector, ctx.heuristic,
                       ctx.analyzer, ctx.result.detections, ctx.rows)


def finalize_shard(ctx: ShardContext) -> ShardResult:
    """Freeze the shard's Table V counters and return its result."""
    ctx.result.row_counts = {
        name: [row.n, row.tp, row.fp] for name, row in ctx.rows.items()
    }
    prof = ctx.profiler
    if prof is not None:
        prof.count("transactions", ctx.result.total_transactions)
        prof.count("detections", len(ctx.result.detections))
        prescreen = ctx.prescreen
        if prescreen is not None:
            prof.count("prescreen_admitted", prescreen.admitted)
            prof.count("prescreen_screened", prescreen.screened)
            prof.count("prescreen_fast_hits", prescreen.fast_hits)
        ctx.result.profile = prof.to_dict()
    return ctx.result


def run_shard(args: tuple) -> ShardResult:
    """Worker entry point: build one shard's world and scan its tasks.

    Module-level (not a method) so it pickles under every multiprocessing
    start method. The payload is ``(cfg, shard_index, shard_count,
    tasks)`` with an optional fifth element that warm-starts the build: a
    full context-snapshot wire dict (distinguished by its ``chain_name``
    key) or a bare PR-5 tag-sync snapshot. Either is ignored when it does
    not match the freshly built chain.
    """
    cfg, shard_index, shard_count, tasks = args[:4]
    snapshot = args[4] if len(args) > 4 else None
    tag_snapshot = context_snapshot = None
    if isinstance(snapshot, dict):
        if "chain_name" in snapshot:
            context_snapshot = snapshot
        else:
            tag_snapshot = snapshot
    elif isinstance(snapshot, ShardContextSnapshot):
        context_snapshot = snapshot
    ctx = build_shard_context(
        cfg,
        shard_index,
        shard_count,
        tag_snapshot=tag_snapshot,
        context_snapshot=context_snapshot,
    )
    prof = ctx.profiler
    if prof is None:
        for task in tasks:
            labeled = execute_task(ctx, task)
            if labeled is not None:
                detect_task(ctx, labeled)
    else:
        for task in tasks:
            started = perf_counter_ns()
            labeled = execute_task(ctx, task)
            prof.add("execute", perf_counter_ns() - started)
            if labeled is not None:
                started = perf_counter_ns()
                detect_task(ctx, labeled)
                prof.add("detect", perf_counter_ns() - started)
    return finalize_shard(ctx)


def run_shard_batch(payloads: list[tuple]) -> list[ShardResult]:
    """Worker entry point for chunked submission: run several shard
    payloads sequentially inside one worker process.

    Chunking amortizes per-task pool overhead (pickling, dispatch) and —
    because consecutive payloads of a striped chunk often rebuild
    same-named shard worlds across scan repeats — lets the in-process
    snapshot cache warm later builds. Results come back in payload order;
    the caller owns merge ordering, so chunking never affects the merged
    result.
    """
    run = run_shard  # module-global lookup: tests may monkeypatch run_shard
    return [run(payload) for payload in payloads]


def merge_shard_results(config, outcomes: list[ShardResult]):
    """Merge shard results into one ``WildScanResult``, in shard-index order.

    The single merge implementation behind the batch engine, the streaming
    merger and the cluster coordinator: because it orders by
    ``shard_index`` before summing, the merged result is byte-identical no
    matter which process, host or completion order produced the shards.
    """
    from ..leishen.registry import enabled_pattern_keys
    from ..workload.generator import PatternRow, WildScanResult

    result = WildScanResult(
        config=config,
        rows={
            name: PatternRow(name)
            for name in enabled_pattern_keys(config.pattern_config)
        },
    )
    for outcome in sorted(outcomes, key=lambda outcome: outcome.shard_index):
        result.total_transactions += outcome.total_transactions
        result.detections.extend(outcome.detections)
        for name, (n, tp, fp) in outcome.row_counts.items():
            row = result.rows[name]
            row.n += n
            row.tp += tp
            row.fp += fp
    return result


def detect_into(cfg, labeled, detector, heuristic, analyzer, detections, rows):
    """Run detection + paper-style manual verification on one transaction,
    appending to ``detections`` and updating the Table V ``rows``.

    Returns the analysis report (``None`` for non-flash-loan
    transactions) so callers can observe trades of identified-but-clean
    transactions — the windowed matcher's input."""
    from ..workload.generator import Detection

    report = detector.analyze(labeled.trace)
    if report is None:
        return None  # not identified as a flash loan transaction
    if cfg.with_heuristic:
        report = heuristic.apply(labeled.trace, report)
    if not report.is_attack:
        return report
    patterns = tuple(sorted(report.patterns))
    truth = labeled.truth
    profit_usd = borrowed_usd = 0.0
    if truth.is_attack:
        accounts = [a for a in (truth.attacker, truth.attack_contract) if a is not None]
        breakdown = analyzer.breakdown(labeled.trace, report.flash_loans, accounts)
        profit_usd, borrowed_usd = breakdown.profit_usd, breakdown.borrowed_usd
    detections.append(
        Detection(
            tx_hash=labeled.trace.tx_hash,
            patterns=patterns,
            truth=truth,
            profit_usd=profit_usd,
            borrowed_usd=borrowed_usd,
        )
    )
    for name in patterns:
        row = rows[name]
        row.n += 1
        if truth.is_attack and name in truth.patterns:
            row.tp += 1
        else:
            row.fp += 1
    return report


class ScanEngine:
    """Shards the wild scan across worker processes and merges the results.

    ``ledger`` (a path or an open :class:`repro.runtime.RunLedger`)
    journals every completed shard durably: a killed run resumes by
    loading the journal and scheduling only the remaining shards, and
    the final merge is decoded *from the ledger*, so a resumed result is
    byte-identical to an uninterrupted one.
    """

    def __init__(self, config, *, ledger=None) -> None:
        self.config = config
        self._ledger_spec = ledger
        #: the resolved :class:`repro.runtime.RunLedger` after ``run()``
        #: (``None`` for unjournaled runs); exposes ``resumed_count`` /
        #: ``recorded_count`` for reporting.
        self.ledger = None
        #: merged per-stage profile payload after a ``config.profile``
        #: run (``None`` otherwise). Observability only — never part of
        #: the returned result or the ledger journal.
        self.profile = None

    # ------------------------------------------------------------------

    def run(self):
        cfg = self.config
        tasks, shard_count = build_full_schedule(cfg)
        ledger = self._resolve_ledger(shard_count)
        parts = shard_schedule(tasks, shard_count)
        done = ledger.completed_shards() if ledger is not None else frozenset()
        payloads = [
            (cfg, index, shard_count, part)
            for index, part in enumerate(parts)
            if index not in done
        ]
        record = ledger.record if ledger is not None else None
        jobs = cfg.jobs  # validated >= 1 by WildScanConfig
        if not payloads:
            outcomes: list[ShardResult] = []
        elif jobs == 1 or len(payloads) == 1:
            outcomes = []
            for payload in payloads:
                outcome = run_shard(payload)
                if record is not None:
                    record(outcome)
                outcomes.append(outcome)
        else:
            outcomes = self._run_parallel(
                payloads, min(jobs, len(payloads)), on_shard=record
            )
        if getattr(cfg, "profile", False):
            from ..runtime.profile import merge_profiles

            self.profile = merge_profiles([o.profile for o in outcomes])
        if ledger is not None:
            return ledger.merge()
        return self._merge(outcomes)

    def _resolve_ledger(self, shard_count: int):
        """Normalize the ``ledger`` argument into an open ``RunLedger``.

        Lazy import: :mod:`repro.runtime` imports this module at load
        time, so the dependency must stay one-directional at import time.
        """
        if self._ledger_spec is None:
            self.ledger = None
            return None
        from ..runtime.ledger import ensure_ledger

        self.ledger = ensure_ledger(self._ledger_spec, self.config, shard_count)
        return self.ledger

    # ------------------------------------------------------------------

    @staticmethod
    def _run_parallel(
        payloads: list[tuple], workers: int, on_shard=None
    ) -> list[ShardResult]:
        """Fan the shard payloads over a process pool, in worker-sized chunks.

        Payloads are striped into one chunk per worker
        (``payloads[i::workers]``) and each chunk is submitted as a single
        :func:`run_shard_batch` task, so a scan pays one pickle/dispatch
        round-trip per worker instead of one per shard. Striping keeps the
        chunks balanced under the round-robin shard partition. Chunking is
        pure submission mechanics: ``on_shard`` (the ledger's ``record``)
        still fires once per shard as chunk results land, and the final
        sort by shard index keeps the merge order — and therefore the
        merged result — byte-identical to per-shard submission.

        Pool breakage (restricted environments, OOM-killed workers) falls
        back to in-process execution — but only for the shards whose
        chunk did not complete; finished chunk results are kept. A genuine
        exception raised *inside* a worker is not pool breakage and
        propagates.
        """
        import multiprocessing

        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        chunks = [payloads[i::workers] for i in range(workers)]
        chunks = [chunk for chunk in chunks if chunk]
        completed: dict[int, ShardResult] = {}  # payload index -> result
        try:
            with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                futures: dict[int, object] = {}  # chunk index -> future
                try:
                    for chunk_index, chunk in enumerate(chunks):
                        futures[chunk_index] = pool.submit(run_shard_batch, chunk)
                except (OSError, PermissionError):
                    futures.clear()  # process spawning denied outright
                for chunk_index, future in futures.items():
                    try:
                        results = future.result()
                    except BrokenProcessPool:
                        break  # pool died; the rest re-runs in-process below
                    # chunk position offset within payloads: payload j of
                    # striped chunk i came from payloads[i + j*workers]
                    for offset, result in enumerate(results):
                        completed[chunk_index + offset * workers] = result
                        if on_shard is not None:
                            on_shard(result)
        except (OSError, PermissionError, BrokenProcessPool):
            pass  # pool setup/teardown failure; completed chunks are kept
        outcomes = []
        for index, payload in enumerate(payloads):
            if index in completed:
                outcomes.append(completed[index])
                continue
            outcome = run_shard(payload)
            if on_shard is not None:
                on_shard(outcome)
            outcomes.append(outcome)
        return sorted(outcomes, key=lambda outcome: outcome.shard_index)

    def _merge(self, outcomes: list[ShardResult]):
        return merge_shard_results(self.config, outcomes)
