"""Deterministic wild-scan scheduling and sharding.

The paper's Sec. VI-C evaluation is embarrassingly parallel: detecting
one flash-loan transaction never depends on another transaction's
detection result. The engine exploits that by computing one *canonical
schedule* — a seeded, shuffled list of pure-data task descriptors — and
partitioning it round-robin into shards. Each shard is later executed
against its own freshly built ``DeFiWorld``, so:

- the schedule (and therefore the partition) depends only on
  ``(seed, scale)``, never on the worker count;
- ``jobs=N`` only decides how many processes *consume* the shards, which
  is what makes ``jobs=1`` and ``jobs=8`` byte-identical.

Task descriptors are plain tuples so they pickle cheaply across process
boundaries:

- ``("attack", cluster_index, attacker_id, contract_id, asset_id, month)``
- ``("migration",)``
- ``("strategy",)``
- ``("benign", profile_index)``
- ``("split", group, round_index, n_rounds)`` — one round transaction of
  a cross-transaction split attack (windowed-detection ground truth)

Split tasks live in a *tail* appended after the canonical schedule (so
``split_attacks=0`` reproduces the historical schedule byte-for-byte).
The tail is wave-interleaved in rows of exactly ``shard_count`` slots:
a group's rounds all sit at the same residue modulo the shard count, so
the round-robin partition routes every round of a group to the same
shard — the rounds must share one world (one pool whose price carries
across transactions) and arrive in consecutive stream blocks.
"""

from __future__ import annotations

import random

from ..workload.attacks import (
    ATTACK_CLUSTERS,
    FULL_SCALE_MIGRATIONS,
    FULL_SCALE_STRATEGIES,
    plan_attacks,
    split_spec_of,
)
from ..workload.profiles import BENIGN_PROFILES
from ..workload.timeline import TOTAL_FLASH_LOAN_TXS

__all__ = [
    "Task",
    "build_schedule",
    "build_full_schedule",
    "split_schedule_tail",
    "adversarial_schedule_tail",
    "shard_schedule",
    "shard_of",
    "resolve_shard_count",
    "shard_seed",
    "DEFAULT_SHARD_COUNT",
    "MIN_SHARDED_POPULATION",
]

#: One schedule entry (see module docstring for the four shapes).
Task = tuple

#: shard count used when ``WildScanConfig.shards`` is left unset and the
#: population is large enough to be worth splitting.
DEFAULT_SHARD_COUNT = 8

#: below this population size auto-sharding stays at one shard: tiny test
#: scans keep a single world and the per-shard setup cost stays amortized.
MIN_SHARDED_POPULATION = 512

_CLUSTER_INDEX = {id(cluster): i for i, cluster in enumerate(ATTACK_CLUSTERS)}


def population_size(scale: float) -> int:
    """Total wild-scan transactions at ``scale`` (1.0 = paper's 272,984)."""
    return max(50, round(TOTAL_FLASH_LOAN_TXS * scale))


def build_schedule(scale: float, seed: int) -> list[Task]:
    """The canonical seeded schedule: attacks + FP sources + benign mix.

    Mirrors the composition arithmetic of the original sequential
    ``WildScanner._schedule`` exactly (same counts, same RNG draw order,
    same shuffle), but emits pure-data descriptors instead of closures
    bound to a live market.
    """
    rng = random.Random(seed)
    tasks: list[Task] = [
        ("attack", _CLUSTER_INDEX[id(cluster)], attacker_id, contract_id, asset_id, month)
        for cluster, attacker_id, contract_id, asset_id, month in plan_attacks(scale)
    ]
    n_migrations = max(1, round(FULL_SCALE_MIGRATIONS * scale))
    tasks.extend([("migration",)] * n_migrations)
    n_strategies = max(1, round(FULL_SCALE_STRATEGIES * scale))
    tasks.extend([("strategy",)] * n_strategies)
    total = population_size(scale)
    indices = range(len(BENIGN_PROFILES))
    weights = [weight for _, weight, _ in BENIGN_PROFILES]
    for _ in range(max(0, total - len(tasks))):
        tasks.append(("benign", rng.choices(indices, weights)[0]))
    rng.shuffle(tasks)
    return tasks


def split_schedule_tail(groups: int, shards: int, seed: int) -> list[Task]:
    """The split-attack tail: ``groups`` cross-transaction attacks.

    Rows of exactly ``shards`` slots, one column per group within a
    wave; because every row spans all residues modulo ``shards``, each
    group's rounds land on one shard and are consecutive within that
    shard's task order. Slots not owned by a live group are filled with
    seeded benign tasks so the column alignment holds for any wave
    shape (fewer groups than shards, ragged round counts).
    """
    if groups <= 0:
        return []
    rng = random.Random(f"split-tail:{seed}")
    indices = range(len(BENIGN_PROFILES))
    weights = [weight for _, weight, _ in BENIGN_PROFILES]
    tail: list[Task] = []
    for wave_start in range(0, groups, shards):
        wave = list(range(wave_start, min(wave_start + shards, groups)))
        rows = max(split_spec_of(g).rounds for g in wave)
        for row in range(rows):
            for column in range(shards):
                if column < len(wave):
                    group = wave[column]
                    n_rounds = split_spec_of(group).rounds
                    if row < n_rounds:
                        tail.append(("split", group, row, n_rounds))
                        continue
                tail.append(("benign", rng.choices(indices, weights)[0]))
    return tail


def adversarial_schedule_tail(count: int) -> list[Task]:
    """Deterministic tail of ``count`` adversarial attack tasks.

    Pure data: task ``i`` cycles the adversarial clusters round-robin
    with instance ids derived from ``i`` alone, so every backend
    computes the identical tail for the same config (the tasks carry no
    month — adversarial families sit outside the paper's timeline).
    """
    from ..workload.attacks import ADVERSARIAL_CLUSTERS

    tail: list[Task] = []
    for i in range(count):
        cluster_index = i % len(ADVERSARIAL_CLUSTERS)
        cluster = ADVERSARIAL_CLUSTERS[cluster_index]
        instance = i // len(ADVERSARIAL_CLUSTERS)
        tail.append((
            "adv",
            cluster_index,
            instance % cluster.n_attackers,
            instance % cluster.n_contracts,
            instance % cluster.n_assets,
            None,
        ))
    return tail


def build_full_schedule(config) -> tuple[list[Task], int]:
    """Canonical schedule *plus* the split-attack tail, and the shard count.

    The shard count is always resolved on the base schedule's length —
    never the tail's — so requesting split attacks cannot flip the
    auto-sharding decision out from under the tail's interleaving.
    Every execution path (batch, stream, cluster, ledger, service) goes
    through this one function, which is what keeps their partitions —
    and therefore their merged bytes — identical for the same config.
    """
    tasks = build_schedule(config.scale, config.seed)
    shard_count = resolve_shard_count(config.shards, len(tasks))
    groups = config.split_attacks
    if groups:
        tasks = tasks + split_schedule_tail(groups, shard_count, config.seed)
    adversarial = getattr(config, "adversarial", 0)
    if adversarial:
        tasks = tasks + adversarial_schedule_tail(adversarial)
    return tasks, shard_count


def shard_schedule(tasks: list[Task], shards: int) -> list[list[Task]]:
    """Round-robin partition preserving within-shard schedule order."""
    if shards <= 1:
        return [list(tasks)]
    return [tasks[i::shards] for i in range(shards)]


def shard_of(position: int, shards: int) -> int:
    """Owning shard of one schedule position.

    Inverse view of :func:`shard_schedule`'s round-robin partition
    (``tasks[i::shards]``): feeding positions ``0..N-1`` in order and
    routing each to ``shard_of(position, shards)`` reproduces every
    shard's task list in its exact batch order — the property the
    streaming engine's determinism contract rests on.
    """
    return position % shards


def resolve_shard_count(shards: int | None, total: int) -> int:
    """Effective shard count; NEVER a function of the worker count.

    Explicit ``shards`` wins; otherwise populations below
    ``MIN_SHARDED_POPULATION`` stay single-shard and larger ones split
    into ``DEFAULT_SHARD_COUNT``.
    """
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return min(shards, max(1, total))
    if total < MIN_SHARDED_POPULATION:
        return 1
    return DEFAULT_SHARD_COUNT


def shard_seed(seed: int, shard_index: int) -> str:
    """Execution-time RNG seed for one shard (string: stable across runs)."""
    return f"wild-scan:{seed}:{shard_index}"
