"""Deterministic wild-scan scheduling and sharding.

The paper's Sec. VI-C evaluation is embarrassingly parallel: detecting
one flash-loan transaction never depends on another transaction's
detection result. The engine exploits that by computing one *canonical
schedule* — a seeded, shuffled list of pure-data task descriptors — and
partitioning it round-robin into shards. Each shard is later executed
against its own freshly built ``DeFiWorld``, so:

- the schedule (and therefore the partition) depends only on
  ``(seed, scale)``, never on the worker count;
- ``jobs=N`` only decides how many processes *consume* the shards, which
  is what makes ``jobs=1`` and ``jobs=8`` byte-identical.

Task descriptors are plain tuples so they pickle cheaply across process
boundaries:

- ``("attack", cluster_index, attacker_id, contract_id, asset_id, month)``
- ``("migration",)``
- ``("strategy",)``
- ``("benign", profile_index)``
"""

from __future__ import annotations

import random

from ..workload.attacks import (
    ATTACK_CLUSTERS,
    FULL_SCALE_MIGRATIONS,
    FULL_SCALE_STRATEGIES,
    plan_attacks,
)
from ..workload.profiles import BENIGN_PROFILES
from ..workload.timeline import TOTAL_FLASH_LOAN_TXS

__all__ = [
    "Task",
    "build_schedule",
    "shard_schedule",
    "shard_of",
    "resolve_shard_count",
    "shard_seed",
    "DEFAULT_SHARD_COUNT",
    "MIN_SHARDED_POPULATION",
]

#: One schedule entry (see module docstring for the four shapes).
Task = tuple

#: shard count used when ``WildScanConfig.shards`` is left unset and the
#: population is large enough to be worth splitting.
DEFAULT_SHARD_COUNT = 8

#: below this population size auto-sharding stays at one shard: tiny test
#: scans keep a single world and the per-shard setup cost stays amortized.
MIN_SHARDED_POPULATION = 512

_CLUSTER_INDEX = {id(cluster): i for i, cluster in enumerate(ATTACK_CLUSTERS)}


def population_size(scale: float) -> int:
    """Total wild-scan transactions at ``scale`` (1.0 = paper's 272,984)."""
    return max(50, round(TOTAL_FLASH_LOAN_TXS * scale))


def build_schedule(scale: float, seed: int) -> list[Task]:
    """The canonical seeded schedule: attacks + FP sources + benign mix.

    Mirrors the composition arithmetic of the original sequential
    ``WildScanner._schedule`` exactly (same counts, same RNG draw order,
    same shuffle), but emits pure-data descriptors instead of closures
    bound to a live market.
    """
    rng = random.Random(seed)
    tasks: list[Task] = [
        ("attack", _CLUSTER_INDEX[id(cluster)], attacker_id, contract_id, asset_id, month)
        for cluster, attacker_id, contract_id, asset_id, month in plan_attacks(scale)
    ]
    n_migrations = max(1, round(FULL_SCALE_MIGRATIONS * scale))
    tasks.extend([("migration",)] * n_migrations)
    n_strategies = max(1, round(FULL_SCALE_STRATEGIES * scale))
    tasks.extend([("strategy",)] * n_strategies)
    total = population_size(scale)
    indices = range(len(BENIGN_PROFILES))
    weights = [weight for _, weight, _ in BENIGN_PROFILES]
    for _ in range(max(0, total - len(tasks))):
        tasks.append(("benign", rng.choices(indices, weights)[0]))
    rng.shuffle(tasks)
    return tasks


def shard_schedule(tasks: list[Task], shards: int) -> list[list[Task]]:
    """Round-robin partition preserving within-shard schedule order."""
    if shards <= 1:
        return [list(tasks)]
    return [tasks[i::shards] for i in range(shards)]


def shard_of(position: int, shards: int) -> int:
    """Owning shard of one schedule position.

    Inverse view of :func:`shard_schedule`'s round-robin partition
    (``tasks[i::shards]``): feeding positions ``0..N-1`` in order and
    routing each to ``shard_of(position, shards)`` reproduces every
    shard's task list in its exact batch order — the property the
    streaming engine's determinism contract rests on.
    """
    return position % shards


def resolve_shard_count(shards: int | None, total: int) -> int:
    """Effective shard count; NEVER a function of the worker count.

    Explicit ``shards`` wins; otherwise populations below
    ``MIN_SHARDED_POPULATION`` stay single-shard and larger ones split
    into ``DEFAULT_SHARD_COUNT``.
    """
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return min(shards, max(1, total))
    if total < MIN_SHARDED_POPULATION:
        return 1
    return DEFAULT_SHARD_COUNT


def shard_seed(seed: int, shard_index: int) -> str:
    """Execution-time RNG seed for one shard (string: stable across runs)."""
    return f"wild-scan:{seed}:{shard_index}"
