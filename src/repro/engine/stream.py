"""Streaming detection through the sharded engine.

The batch :class:`~repro.engine.scan.ScanEngine` consumes a precomputed
schedule shard by shard. This module feeds the *same* schedule through
the same per-shard machinery as a live block stream, so detection keeps
up with blocks as they arrive instead of waiting for a batch boundary:

1. a **block source** yields :class:`StreamBlock`\\ s — groups of
   ``(position, task)`` pairs stamped with simulated mainnet heights
   (:func:`~repro.workload.timeline.study_block_height`);
2. a **feeder** routes each transaction to its owning shard's worker
   (:func:`~repro.engine.plan.shard_of` — the same round-robin partition
   the batch engine uses) through a bounded queue; a full queue blocks
   the feeder, which is the backpressure bound on in-flight memory;
3. **shard workers** (``jobs`` threads, each owning one or more shard
   contexts from :func:`~repro.engine.scan.build_shard_context`) execute
   and detect transactions exactly as :func:`~repro.engine.scan.run_shard`
   does;
4. a **watermark merger** buffers out-of-order completions and emits each
   block — its detections in schedule order plus latency counters — only
   once every transaction at or before it has been processed.

Because every shard executes its batch task sequence unchanged, the
merged :class:`~repro.workload.generator.WildScanResult` is byte-identical
to ``ScanEngine.run()`` for the same ``(seed, scale, shards)``; streaming
only changes *when* results become visible, never *what* they are.

Replay of recorded history (the live-monitor deployment mode) uses
:func:`screen_blocks` over :meth:`~repro.chain.explorer.ChainExplorer.blocks_between`.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from ..leishen.window import (
    DEFAULT_WINDOW_BLOCKS,
    TradeObservation,
    WindowedDetection,
    WindowedMatcher,
)
from ..workload.timeline import study_block_height
from .plan import Task, build_full_schedule, shard_of
from .scan import (
    ShardResult,
    build_replay_context,
    build_shard_context,
    detect_task,
    execute_task,
    finalize_shard,
    merge_shard_results,
)

__all__ = [
    "BlockStats",
    "StreamBlock",
    "StreamEngine",
    "StreamResult",
    "ScreenedTransaction",
    "blocks_from_explorer",
    "schedule_block_stream",
    "screen_blocks",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_WINDOW_BLOCKS",
]

#: per-worker bound on queued transactions; the backpressure knob.
DEFAULT_QUEUE_DEPTH = 64

#: transactions per simulated block in the generated stream.
DEFAULT_BLOCK_SIZE = 32

_SENTINEL = object()


@dataclass(frozen=True, slots=True)
class StreamBlock:
    """One block of the incoming stream: a simulated mainnet height and
    the schedule entries it carries as ``(position, task)`` pairs.
    Positions must be contiguous and globally increasing across blocks —
    the watermark merger's ordering invariant."""

    number: int
    entries: tuple[tuple[int, Task], ...]


@dataclass(slots=True)
class BlockStats:
    """Per-block streaming counters emitted by the merger."""

    number: int
    transactions: int
    detections: int
    #: wall-clock from the block entering the queue to its watermark pass.
    latency_ms: float
    #: summed execute+detect time of the block's transactions.
    detect_ms: float


@dataclass(slots=True)
class StreamResult:
    """A finished streaming run: the batch-identical scan result plus the
    stream's per-block latency/throughput counters."""

    result: object  # WildScanResult
    blocks: list[BlockStats]
    elapsed_s: float
    jobs: int
    shard_count: int
    queue_depth: int
    block_size: int
    max_queue_depth: int = 0
    #: merged per-stage profile payload when the run had
    #: ``config.profile`` (observability only, never part of ``result``).
    profile: dict | None = None
    #: cross-transaction windowed detections in block-emission order
    #: (``None`` unless the engine ran with ``windowed=True``). Strictly
    #: additive: ``result`` is byte-identical with or without them.
    windowed: list | None = None
    #: the sliding-window span (emitted blocks) of a windowed run.
    window_blocks: int = 0

    @property
    def total_transactions(self) -> int:
        return self.result.total_transactions

    @property
    def txs_per_s(self) -> float:
        return self.total_transactions / self.elapsed_s if self.elapsed_s else 0.0

    def latency_percentile(self, fraction: float) -> float:
        """Block-latency percentile in milliseconds (e.g. ``0.95``).

        Standard nearest-rank: the smallest latency at or below which at
        least ``fraction`` of the blocks fall — ``ceil(fraction * n) - 1``
        as a zero-based index, so ``1.0`` is the maximum (p100), not an
        overflow, and p95 of 20 blocks is the 19th value, not the 20th.
        """
        if not self.blocks:
            return 0.0
        ordered = sorted(stats.latency_ms for stats in self.blocks)
        index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[index]


def schedule_block_stream(
    tasks: Sequence[Task], block_size: int = DEFAULT_BLOCK_SIZE
) -> Iterator[StreamBlock]:
    """The canonical schedule as a block stream.

    Groups consecutive schedule positions into blocks of ``block_size``
    and stamps each with a height from the paper's study window, giving a
    generator-driven timeline that stands in for a live node's feed.
    """
    total = len(tasks)
    for start in range(0, total, block_size):
        entries = tuple(
            (position, tasks[position])
            for position in range(start, min(start + block_size, total))
        )
        yield StreamBlock(number=study_block_height(start, total), entries=entries)


def blocks_from_explorer(
    explorer, first_block: int, last_block: int
) -> Iterator[StreamBlock]:
    """Recorded chain history as a ``StreamBlock`` source.

    Adapts :meth:`~repro.chain.explorer.ChainExplorer.blocks_between` to
    the streaming engine's block protocol: every recorded transaction
    becomes a ``("replay", trace)`` entry, positions increase globally
    across blocks (the watermark merger's invariant), and empty blocks
    are dropped. Pair it with ``StreamEngine.run(source=...,
    detector_factory=...)`` so replayed history flows through the sharded
    pipeline instead of the single-detector :func:`screen_blocks` path::

        explorer = ChainExplorer(world.chain)
        source = blocks_from_explorer(explorer, first, last)
        StreamEngine(config).run(
            source=source, detector_factory=world.detector
        )
    """
    position = 0
    for number, traces in explorer.blocks_between(first_block, last_block):
        if not traces:
            continue
        entries = tuple(
            (position + offset, ("replay", trace))
            for offset, trace in enumerate(traces)
        )
        position += len(traces)
        yield StreamBlock(number=number, entries=entries)


# ---------------------------------------------------------------------------
# merger bookkeeping
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _OpenBlock:
    number: int
    first_position: int
    last_position: int
    remaining: int
    fed_at: float
    completions: list = field(default_factory=list)


class StreamEngine:
    """Runs the wild scan as a stream with bounded in-flight memory.

    ``config`` is a :class:`~repro.workload.generator.WildScanConfig`;
    its ``jobs`` becomes the worker-thread count and its ``shards`` pins
    the deterministic partition exactly as in the batch engine.
    """

    def __init__(
        self,
        config,
        *,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        block_size: int = DEFAULT_BLOCK_SIZE,
        ledger=None,
        windowed: bool = False,
        window_blocks: int = DEFAULT_WINDOW_BLOCKS,
    ) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if window_blocks < 1:
            raise ValueError(f"window_blocks must be >= 1, got {window_blocks}")
        self.config = config
        self.queue_depth = queue_depth
        self.block_size = block_size
        #: cross-transaction windowed matching on the merger thread
        #: (:mod:`repro.leishen.window`). Purely additive: the
        #: per-transaction result stays byte-identical either way.
        self.windowed = windowed
        self.window_blocks = window_blocks
        self._ledger_spec = ledger
        #: the resolved :class:`repro.runtime.RunLedger` after ``run()``
        #: (``None`` for unjournaled runs).
        self.ledger = None
        #: the live :class:`~repro.leishen.window.WindowedMatcher` of the
        #: current/most recent windowed run (bounded-state introspection
        #: for tests and monitoring); ``None`` otherwise.
        self.window_matcher = None

    # ------------------------------------------------------------------

    def run(
        self,
        source: Iterable[StreamBlock] | None = None,
        on_block: Callable[[BlockStats, list], None] | None = None,
        detector_factory: Callable[[], object] | None = None,
        on_windowed: Callable[[WindowedDetection], None] | None = None,
    ) -> StreamResult:
        """Consume the block stream; return the merged result and counters.

        ``on_block`` (called on the merger thread) observes each block the
        moment its watermark passes: ``on_block(stats, detections)`` with
        the block's detections in schedule order — the live alerting hook.

        ``detector_factory`` switches the workers into replay mode for a
        recorded-history ``source`` (see :func:`blocks_from_explorer`):
        each shard detects with a fresh ``detector_factory()`` — built
        over the chain that recorded the traces — instead of generating a
        world of its own. Replay sources must contain only ``("replay",
        trace)`` entries.

        With a ``ledger`` (constructor argument), shards already
        journaled by a previous run are skipped entirely — their
        transactions never enter the queues — and every freshly
        finalized shard is journaled at end of stream; the merged result
        is decoded from the ledger, so a resumed run is byte-identical
        to an uninterrupted one. Shard results only exist at end of
        stream (a shard accumulates state across all its blocks), so a
        killed stream run journals nothing — resume granularity is the
        shard, recorded at stream end.

        With ``windowed=True`` (constructor argument) the merger also
        feeds each emitted block's flash-loan observations to a
        :class:`~repro.leishen.window.WindowedMatcher`; cross-transaction
        matches land in ``StreamResult.windowed`` in block-emission order
        and ``on_windowed`` (merger thread) observes each as it fires.
        Windowed matching never changes the per-transaction result — the
        bytes of ``StreamResult.result`` are identical with windowing on
        or off. A ledger-resumed windowed run only observes the shards it
        actually re-executes: windowed detections are derived, not
        journaled.
        """
        cfg = self.config
        tasks, shard_count = build_full_schedule(cfg)
        ledger = None
        if self._ledger_spec is not None:
            if source is not None or detector_factory is not None:
                raise ValueError(
                    "ledger journaling requires the canonical schedule stream; "
                    "custom source/detector_factory runs cannot be journaled"
                )
            from ..runtime.ledger import ensure_ledger

            ledger = ensure_ledger(self._ledger_spec, cfg, shard_count)
            self.ledger = ledger
        done_shards = (
            ledger.completed_shards() if ledger is not None else frozenset()
        )
        if source is None:
            source = schedule_block_stream(tasks, self.block_size)
        workers = min(cfg.jobs, shard_count)

        in_queues: list[queue.Queue] = [
            queue.Queue(maxsize=self.queue_depth) for _ in range(workers)
        ]
        out_queue: queue.Queue = queue.Queue(maxsize=self.queue_depth * workers)
        shard_results: dict[int, ShardResult] = {}
        errors: list[BaseException] = []
        stats_out: list[BlockStats] = []
        max_depth = 0
        windowed = self.windowed
        matcher = None
        windowed_out: list[WindowedDetection] = []
        if windowed:
            matcher = WindowedMatcher(self.window_blocks, cfg.pattern_config)
        self.window_matcher = matcher

        def worker(worker_index: int) -> None:
            contexts: dict[int, object] = {}
            inbox = in_queues[worker_index]
            failed = False
            while True:
                item = inbox.get()
                if item is _SENTINEL:
                    break
                if failed:
                    continue  # drain so the feeder never blocks on us
                position, task = item
                shard = shard_of(position, shard_count)
                try:
                    ctx = contexts.get(shard)
                    if ctx is None:
                        if detector_factory is not None:
                            ctx = build_replay_context(
                                cfg, shard, detector_factory()
                            )
                        else:
                            ctx = build_shard_context(cfg, shard, shard_count)
                        contexts[shard] = ctx
                    started = time.perf_counter()
                    before = len(ctx.result.detections)
                    labeled = execute_task(ctx, task)
                    report = None
                    if labeled is not None:
                        report = detect_task(ctx, labeled)
                    elapsed = time.perf_counter() - started
                    fresh = tuple(ctx.result.detections[before:])
                    observation = None
                    if windowed and report is not None:
                        # every identified flash-loan transaction feeds
                        # the window — including clean ones, which is
                        # where cross-transaction sequences hide.
                        observation = TradeObservation(
                            tx_hash=labeled.trace.tx_hash,
                            position=position,
                            borrower_tags=tuple(report.borrower_tags),
                            trades=tuple(report.trades),
                            matched_patterns=frozenset(report.patterns),
                            split_group=labeled.truth.split_group,
                        )
                except BaseException as exc:  # propagate via the merger
                    failed = True
                    out_queue.put(("error", exc))
                    continue
                out_queue.put(("done", position, fresh, elapsed, observation))
            for shard, ctx in contexts.items():
                shard_results[shard] = finalize_shard(ctx)

        def emit(block: _OpenBlock) -> None:
            observations = self._emit(block, stats_out, on_block)
            if matcher is None:
                return
            # windowed matching rides the watermark pass: observations
            # arrive in block order with in-block schedule order, so the
            # windowed emission is as deterministic as the merge itself.
            for detection in matcher.observe_block(block.number, observations):
                windowed_out.append(detection)
                if on_windowed is not None:
                    on_windowed(detection)

        def merger() -> None:
            open_blocks: deque[_OpenBlock] = deque()
            while True:
                event = out_queue.get()
                kind = event[0]
                if kind == "eof":
                    break
                if kind == "error":
                    errors.append(event[1])
                    continue
                if kind == "fed":
                    _, number, first, last, count, fed_at = event
                    open_blocks.append(
                        _OpenBlock(number, first, last, count, fed_at)
                    )
                    continue
                _, position, fresh, elapsed, observation = event
                for block in open_blocks:
                    if block.first_position <= position <= block.last_position:
                        block.remaining -= 1
                        block.completions.append(
                            (position, fresh, elapsed, observation)
                        )
                        break
                while open_blocks and open_blocks[0].remaining == 0:
                    emit(open_blocks.popleft())
            # a worker failure can leave blocks permanently open; emit only
            # the complete prefix so stats stay truthful.
            while open_blocks and open_blocks[0].remaining == 0:
                emit(open_blocks.popleft())

        worker_threads = [
            threading.Thread(target=worker, args=(i,), name=f"stream-shard-{i}")
            for i in range(workers)
        ]
        merger_thread = threading.Thread(target=merger, name="stream-merger")
        started = time.perf_counter()
        for thread in (*worker_threads, merger_thread):
            thread.start()
        try:
            for block in source:
                entries = block.entries
                if done_shards:
                    # resumed shards are already journaled: their
                    # transactions never enter the pipeline.
                    entries = tuple(
                        entry
                        for entry in entries
                        if shard_of(entry[0], shard_count) not in done_shards
                    )
                if not entries:
                    continue
                first = entries[0][0]
                last = entries[-1][0]
                out_queue.put(
                    ("fed", block.number, first, last, len(entries), time.perf_counter())
                )
                for position, task in entries:
                    inbox = in_queues[shard_of(position, shard_count) % workers]
                    inbox.put((position, task))  # blocks when full: backpressure
                    depth = inbox.qsize()
                    if depth > max_depth:
                        max_depth = depth
        finally:
            for inbox in in_queues:
                inbox.put(_SENTINEL)
            for thread in worker_threads:
                thread.join()
            out_queue.put(("eof",))
            merger_thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]

        ordered = [shard_results[index] for index in sorted(shard_results)]
        profile = None
        if getattr(cfg, "profile", False):
            from ..runtime.profile import merge_profiles

            profile = merge_profiles([outcome.profile for outcome in ordered])
        if ledger is not None:
            for outcome in ordered:
                ledger.record(outcome)
            result = ledger.merge()
        else:
            result = merge_shard_results(cfg, ordered)
        return StreamResult(
            result=result,
            blocks=stats_out,
            elapsed_s=elapsed,
            jobs=workers,
            shard_count=shard_count,
            queue_depth=self.queue_depth,
            block_size=self.block_size,
            max_queue_depth=max_depth,
            profile=profile,
            windowed=windowed_out if windowed else None,
            window_blocks=self.window_blocks if windowed else 0,
        )

    @staticmethod
    def _emit(
        block: _OpenBlock,
        stats_out: list[BlockStats],
        on_block: Callable[[BlockStats, list], None] | None,
    ) -> list:
        """Emit one watermark-complete block; returns its windowed
        observations in schedule order."""
        block.completions.sort(key=lambda completion: completion[0])
        detections = [
            detection
            for _, fresh, _, _ in block.completions
            for detection in fresh
        ]
        stats = BlockStats(
            number=block.number,
            transactions=len(block.completions),
            detections=len(detections),
            latency_ms=(time.perf_counter() - block.fed_at) * 1e3,
            detect_ms=sum(
                elapsed for _, _, elapsed, _ in block.completions
            ) * 1e3,
        )
        stats_out.append(stats)
        if on_block is not None:
            on_block(stats, detections)
        return [
            observation
            for _, _, _, observation in block.completions
            if observation is not None
        ]


# ---------------------------------------------------------------------------
# replay streaming: recorded chain history through one detector
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ScreenedTransaction:
    """One screened flash-loan transaction from a replayed block stream."""

    block_number: int
    report: object  # AttackReport
    latency_ms: float

    @property
    def is_attack(self) -> bool:
        return self.report.is_attack


def screen_blocks(
    detector,
    blocks: Iterable[tuple[int, Sequence]],
    on_alert: Callable[[ScreenedTransaction], None] | None = None,
    prescreen=None,
) -> Iterator[ScreenedTransaction]:
    """Screen recorded blocks — ``(number, traces)`` pairs, e.g. from
    :meth:`~repro.chain.explorer.ChainExplorer.blocks_between` — through a
    detector, yielding every flash-loan transaction in block order with
    its per-transaction detection latency. Non-flash-loan transactions
    are skipped, as in the paper's deployment mode.

    ``prescreen`` (a :class:`~repro.leishen.prescreen.PreScreen` over the
    recording chain) is installed on the detector for the scan: replayed
    history is dominated by non-flash-loan traffic, exactly where the
    necessary-condition skip saves the most work without changing any
    verdict."""
    if prescreen is not None:
        detector.prescreen = prescreen
    for number, traces in blocks:
        for trace in traces:
            started = time.perf_counter()
            report = detector.analyze(trace)
            latency_ms = (time.perf_counter() - started) * 1e3
            if report is None:
                continue
            screened = ScreenedTransaction(number, report, latency_ms)
            if on_alert is not None and screened.is_attack:
                on_alert(screened)
            yield screened
