"""JSON-safe serialization of scan configs and shard results.

The cluster subsystem (:mod:`repro.cluster`) ships shard descriptors to
remote workers and streams their :class:`~repro.engine.scan.ShardResult`\\ s
back over a length-prefixed JSON wire protocol, and the run ledger
(:mod:`repro.runtime.ledger`) journals the same payloads durably to
disk. Everything that crosses the wire or lands in a ledger round-trips
through the codecs in this module, and the round-trip is lossless: a
decoded shard result merges byte-identically to the in-process original
(``tests/cluster/test_protocol.py`` pins this).

Only plain JSON types ever cross the wire — no pickling — so a worker
can never execute anything the coordinator sends except the scan the
codecs describe, and vice versa.

Decoding is *strict*: every payload carries an explicit schema version
(``"v"``) and an exact field set. A version mismatch, a missing field or
an unknown field raises ``ValueError`` immediately instead of silently
producing a wrong merge — the failure mode that matters once payloads
outlive the process that wrote them (resumed ledgers, mixed-version
fleets).

Optional fields (``_CONFIG_OPTIONAL`` / ``_TRUTH_OPTIONAL``) are
*omitted at their default value* rather than encoded as nulls. That
keeps every payload written before the field existed decodable, and —
because :func:`config_digest` hashes the encoded dict — keeps the
digests of default-valued configs byte-identical across versions. A
non-default value (a non-paper pattern selection, an adversarial tail,
a family-labelled truth) encodes the field and therefore changes the
digest, which is exactly the identity contract: same digest ⇔ same
scan bytes.
"""

from __future__ import annotations

import hashlib
import json

from ..chain.types import Address
from .scan import ShardResult

__all__ = [
    "WIRE_VERSION",
    "config_digest",
    "config_to_wire",
    "config_from_wire",
    "detection_to_wire",
    "detection_from_wire",
    "shard_result_to_wire",
    "shard_result_from_wire",
]

#: schema version stamped on every top-level payload. Bump whenever a
#: codec's field set changes; decoders reject anything else.
#: v2: configs carry ``split_attacks`` (cross-transaction split-attack
#: groups — identity-relevant, it changes the canonical schedule) and
#: ground truths carry ``split_group``. Still v2: ``pattern_config``
#: may be a namespaced pattern-settings object, configs may carry
#: ``adversarial`` and truths ``family`` — all optional-at-default, so
#: v2 payloads written by older builds decode unchanged.
WIRE_VERSION = 2

_CONFIG_FIELDS = frozenset(
    {"v", "scale", "seed", "with_heuristic", "keep_history", "pattern_config",
     "shards", "split_attacks"}
)
#: fields omitted from the payload when at their default value.
_CONFIG_OPTIONAL = frozenset({"adversarial"})
_PATTERN_FIELDS = frozenset(
    {"krp_min_buys", "sbs_min_volatility", "sbs_amount_tolerance",
     "mbs_min_rounds"}
)
#: the namespaced encoding of a ``PatternSettings`` (vs. the flat legacy
#: ``PatternConfig`` encoding above) — distinguished by the ``enabled``
#: key, which the flat form can never carry.
_SETTINGS_FIELDS = frozenset({"enabled", "params", "registry"})
_TRUTH_FIELDS = frozenset(
    {"is_attack", "profile", "net_profit", "source_disclosed",
     "aggregator_initiated", "attacked_app", "attacker", "attack_contract",
     "asset", "month", "patterns", "known", "split_group"}
)
_TRUTH_OPTIONAL = frozenset({"family"})
_DETECTION_FIELDS = frozenset(
    {"tx_hash", "patterns", "truth", "profit_usd", "borrowed_usd"}
)
_SHARD_RESULT_FIELDS = frozenset(
    {"v", "shard_index", "total_transactions", "detections", "row_counts"}
)


def _check_payload(
    payload, fields: frozenset, what: str, optional: frozenset = frozenset()
) -> None:
    """Exact-schema check: precisely ``fields`` plus any of ``optional``."""
    if not isinstance(payload, dict):
        raise ValueError(
            f"{what}: expected a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - fields - optional)
    if unknown:
        raise ValueError(f"{what}: unknown field(s) {unknown}")
    missing = sorted(fields - set(payload))
    if missing:
        raise ValueError(f"{what}: missing field(s) {missing}")


def _check_version(payload: dict, what: str) -> None:
    version = payload.get("v") if isinstance(payload, dict) else None
    if version != WIRE_VERSION:
        raise ValueError(
            f"{what}: wire schema version mismatch — payload says "
            f"{version!r}, this build speaks v{WIRE_VERSION}"
        )


def _pattern_config_to_wire(cfg):
    """Encode either pattern-config flavour; ``None`` passes through.

    A flat :class:`~repro.leishen.patterns.PatternConfig` keeps its
    legacy four-field encoding byte-for-byte. A
    :class:`~repro.leishen.registry.PatternSettings` encodes the full
    identity triple (enabled keys, per-pattern params, registry
    version) — so changing the enabled set *or* any threshold yields a
    distinct :func:`config_digest`.
    """
    if cfg is None:
        return None
    from ..leishen.registry import PatternSettings

    if isinstance(cfg, PatternSettings):
        return {
            "enabled": list(cfg.enabled),
            "params": {
                key: dict(values) for key, values in cfg.params
            },
            "registry": cfg.registry_version,
        }
    return {
        "krp_min_buys": cfg.krp_min_buys,
        "sbs_min_volatility": cfg.sbs_min_volatility,
        "sbs_amount_tolerance": cfg.sbs_amount_tolerance,
        "mbs_min_rounds": cfg.mbs_min_rounds,
    }


def _pattern_config_from_wire(payload, what: str):
    if payload is None:
        return None
    if isinstance(payload, dict) and "enabled" in payload:
        from ..leishen.registry import PatternSettings

        _check_payload(payload, _SETTINGS_FIELDS, what)
        return PatternSettings.make(
            enabled=payload["enabled"],
            params=payload["params"],
            registry_version=payload["registry"],
        )
    from ..leishen.patterns import PatternConfig

    _check_payload(payload, _PATTERN_FIELDS, what)
    return PatternConfig(**payload)


def config_to_wire(config) -> dict:
    """Encode a ``WildScanConfig`` as a JSON-safe dict.

    ``jobs`` is deliberately dropped: it is an execution knob of the
    *local* engine and must never leak into a worker's identity-relevant
    inputs (a cluster worker always executes its shard sequentially).
    """
    payload = {
        "v": WIRE_VERSION,
        "scale": config.scale,
        "seed": config.seed,
        "with_heuristic": config.with_heuristic,
        "keep_history": config.keep_history,
        "pattern_config": _pattern_config_to_wire(config.pattern_config),
        "shards": config.shards,
        "split_attacks": config.split_attacks,
    }
    adversarial = getattr(config, "adversarial", 0)
    if adversarial:
        payload["adversarial"] = adversarial
    return payload


def config_from_wire(payload: dict):
    """Decode :func:`config_to_wire` output back into a ``WildScanConfig``."""
    from ..workload.generator import WildScanConfig

    _check_version(payload, "scan config")
    _check_payload(payload, _CONFIG_FIELDS, "scan config", _CONFIG_OPTIONAL)
    return WildScanConfig(
        scale=payload["scale"],
        seed=payload["seed"],
        with_heuristic=payload["with_heuristic"],
        keep_history=payload["keep_history"],
        pattern_config=_pattern_config_from_wire(
            payload["pattern_config"], "pattern config"
        ),
        jobs=1,
        shards=payload["shards"],
        split_attacks=payload["split_attacks"],
        adversarial=payload.get("adversarial", 0),
    )


def config_digest(config) -> str:
    """Stable content digest of a scan config's identity-relevant fields.

    SHA-256 over the canonical JSON of :func:`config_to_wire`, so two
    configs digest equal exactly when they would produce byte-identical
    scans. The run ledger records this in its header and refuses to
    resume under a different config — silently merging shards from a
    different scan is the one corruption a journal must make impossible.
    """
    blob = json.dumps(config_to_wire(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _truth_to_wire(truth) -> dict:
    payload = {
        "is_attack": truth.is_attack,
        "profile": truth.profile,
        "net_profit": truth.net_profit,
        "source_disclosed": truth.source_disclosed,
        "aggregator_initiated": truth.aggregator_initiated,
        "attacked_app": truth.attacked_app,
        "attacker": truth.attacker,
        "attack_contract": truth.attack_contract,
        "asset": truth.asset,
        "month": truth.month,
        "patterns": list(truth.patterns),
        "known": truth.known,
        "split_group": truth.split_group,
    }
    if truth.family is not None:
        payload["family"] = truth.family
    return payload


def _truth_from_wire(payload: dict):
    from ..workload.profiles import GroundTruth

    _check_payload(payload, _TRUTH_FIELDS, "ground truth", _TRUTH_OPTIONAL)

    def address(value):
        return Address(value) if value is not None else None

    return GroundTruth(
        is_attack=payload["is_attack"],
        profile=payload["profile"],
        net_profit=payload["net_profit"],
        source_disclosed=payload["source_disclosed"],
        aggregator_initiated=payload["aggregator_initiated"],
        attacked_app=payload["attacked_app"],
        attacker=address(payload["attacker"]),
        attack_contract=address(payload["attack_contract"]),
        asset=payload["asset"],
        month=payload["month"],
        patterns=tuple(payload["patterns"]),
        known=payload["known"],
        split_group=payload["split_group"],
        family=payload.get("family"),
    )


def detection_to_wire(detection) -> dict:
    return {
        "tx_hash": detection.tx_hash,
        "patterns": list(detection.patterns),
        "truth": _truth_to_wire(detection.truth),
        "profit_usd": detection.profit_usd,
        "borrowed_usd": detection.borrowed_usd,
    }


def detection_from_wire(payload: dict):
    from ..workload.generator import Detection

    _check_payload(payload, _DETECTION_FIELDS, "detection")
    return Detection(
        tx_hash=payload["tx_hash"],
        patterns=tuple(payload["patterns"]),
        truth=_truth_from_wire(payload["truth"]),
        profit_usd=payload["profit_usd"],
        borrowed_usd=payload["borrowed_usd"],
    )


def shard_result_to_wire(result: ShardResult) -> dict:
    return {
        "v": WIRE_VERSION,
        "shard_index": result.shard_index,
        "total_transactions": result.total_transactions,
        "detections": [detection_to_wire(d) for d in result.detections],
        "row_counts": {
            name: list(counts) for name, counts in result.row_counts.items()
        },
    }


def shard_result_from_wire(payload: dict) -> ShardResult:
    _check_version(payload, "shard result")
    _check_payload(payload, _SHARD_RESULT_FIELDS, "shard result")
    return ShardResult(
        shard_index=payload["shard_index"],
        total_transactions=payload["total_transactions"],
        detections=[detection_from_wire(d) for d in payload["detections"]],
        row_counts={
            name: list(counts) for name, counts in payload["row_counts"].items()
        },
    )
