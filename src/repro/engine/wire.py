"""JSON-safe serialization of scan configs and shard results.

The cluster subsystem (:mod:`repro.cluster`) ships shard descriptors to
remote workers and streams their :class:`~repro.engine.scan.ShardResult`\\ s
back over a length-prefixed JSON wire protocol. Everything that crosses
the wire round-trips through the codecs in this module, and the
round-trip is lossless: a decoded shard result merges byte-identically
to the in-process original (``tests/cluster/test_protocol.py`` pins
this).

Only plain JSON types ever cross the wire — no pickling — so a worker
can never execute anything the coordinator sends except the scan the
codecs describe, and vice versa.
"""

from __future__ import annotations

from ..chain.types import Address
from .scan import ShardResult

__all__ = [
    "config_to_wire",
    "config_from_wire",
    "detection_to_wire",
    "detection_from_wire",
    "shard_result_to_wire",
    "shard_result_from_wire",
]


def config_to_wire(config) -> dict:
    """Encode a ``WildScanConfig`` as a JSON-safe dict.

    ``jobs`` is deliberately dropped: it is an execution knob of the
    *local* engine and must never leak into a worker's identity-relevant
    inputs (a cluster worker always executes its shard sequentially).
    """
    pattern_config = None
    if config.pattern_config is not None:
        cfg = config.pattern_config
        pattern_config = {
            "krp_min_buys": cfg.krp_min_buys,
            "sbs_min_volatility": cfg.sbs_min_volatility,
            "sbs_amount_tolerance": cfg.sbs_amount_tolerance,
            "mbs_min_rounds": cfg.mbs_min_rounds,
        }
    return {
        "scale": config.scale,
        "seed": config.seed,
        "with_heuristic": config.with_heuristic,
        "keep_history": config.keep_history,
        "pattern_config": pattern_config,
        "shards": config.shards,
    }


def config_from_wire(payload: dict):
    """Decode :func:`config_to_wire` output back into a ``WildScanConfig``."""
    from ..leishen.patterns import PatternConfig
    from ..workload.generator import WildScanConfig

    pattern_config = payload.get("pattern_config")
    return WildScanConfig(
        scale=payload["scale"],
        seed=payload["seed"],
        with_heuristic=payload["with_heuristic"],
        keep_history=payload["keep_history"],
        pattern_config=(
            PatternConfig(**pattern_config) if pattern_config is not None else None
        ),
        jobs=1,
        shards=payload.get("shards"),
    )


def _truth_to_wire(truth) -> dict:
    return {
        "is_attack": truth.is_attack,
        "profile": truth.profile,
        "net_profit": truth.net_profit,
        "source_disclosed": truth.source_disclosed,
        "aggregator_initiated": truth.aggregator_initiated,
        "attacked_app": truth.attacked_app,
        "attacker": truth.attacker,
        "attack_contract": truth.attack_contract,
        "asset": truth.asset,
        "month": truth.month,
        "patterns": list(truth.patterns),
        "known": truth.known,
    }


def _truth_from_wire(payload: dict):
    from ..workload.profiles import GroundTruth

    def address(value):
        return Address(value) if value is not None else None

    return GroundTruth(
        is_attack=payload["is_attack"],
        profile=payload["profile"],
        net_profit=payload["net_profit"],
        source_disclosed=payload["source_disclosed"],
        aggregator_initiated=payload["aggregator_initiated"],
        attacked_app=payload["attacked_app"],
        attacker=address(payload["attacker"]),
        attack_contract=address(payload["attack_contract"]),
        asset=payload["asset"],
        month=payload["month"],
        patterns=tuple(payload["patterns"]),
        known=payload["known"],
    )


def detection_to_wire(detection) -> dict:
    return {
        "tx_hash": detection.tx_hash,
        "patterns": list(detection.patterns),
        "truth": _truth_to_wire(detection.truth),
        "profit_usd": detection.profit_usd,
        "borrowed_usd": detection.borrowed_usd,
    }


def detection_from_wire(payload: dict):
    from ..workload.generator import Detection

    return Detection(
        tx_hash=payload["tx_hash"],
        patterns=tuple(payload["patterns"]),
        truth=_truth_from_wire(payload["truth"]),
        profit_usd=payload["profit_usd"],
        borrowed_usd=payload["borrowed_usd"],
    )


def shard_result_to_wire(result: ShardResult) -> dict:
    return {
        "shard_index": result.shard_index,
        "total_transactions": result.total_transactions,
        "detections": [detection_to_wire(d) for d in result.detections],
        "row_counts": {
            name: list(counts) for name, counts in result.row_counts.items()
        },
    }


def shard_result_from_wire(payload: dict) -> ShardResult:
    return ShardResult(
        shard_index=payload["shard_index"],
        total_transactions=payload["total_transactions"],
        detections=[detection_from_wire(d) for d in payload["detections"]],
        row_counts={
            name: list(counts) for name, counts in payload["row_counts"].items()
        },
    )
