"""Wild-scan throughput benchmark: sequential vs. sharded txs/sec.

Produces the ``BENCH_wildscan.json`` artifact that tracks the scan
engine's performance trajectory from PR 1 onward. Library-first so the
tier-1 suite, ``benchmarks/test_bench_wildscan.py`` and
``benchmarks/run_smoke.py`` all share one implementation::

    from repro.engine.bench import run_wildscan_bench, write_artifact

    report = run_wildscan_bench(scale=0.01, jobs_values=(1, 4))
    write_artifact(report, "BENCH_wildscan.json")
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = [
    "effective_cpu_count",
    "run_wildscan_bench",
    "run_stream_bench",
    "run_cluster_bench",
    "run_resume_bench",
    "run_fullscale_bench",
    "write_artifact",
    "DEFAULT_ARTIFACT",
    "DEFAULT_STREAM_ARTIFACT",
    "DEFAULT_CLUSTER_ARTIFACT",
    "DEFAULT_RESUME_ARTIFACT",
    "DEFAULT_FULLSCALE_ARTIFACT",
]

#: canonical artifact location (repo root, tracked across PRs).
DEFAULT_ARTIFACT = "BENCH_wildscan.json"

#: streaming-pipeline artifact (repo root, tracked across PRs).
DEFAULT_STREAM_ARTIFACT = "BENCH_stream.json"

#: distributed-scan artifact (repo root, tracked across PRs).
DEFAULT_CLUSTER_ARTIFACT = "BENCH_cluster.json"

#: run-ledger resume artifact (repo root, tracked across PRs).
DEFAULT_RESUME_ARTIFACT = "BENCH_resume.json"

#: full-scale (scale=1.0) end-to-end artifact (repo root, tracked across PRs).
DEFAULT_FULLSCALE_ARTIFACT = "BENCH_fullscale.json"


def effective_cpu_count() -> int:
    """CPUs this process may actually use.

    ``os.cpu_count()`` reports the host's cores, but cgroup/affinity
    limits (CI runners, containers, ``taskset``) can pin the process to
    fewer — the honest denominator for any speedup claim. Falls back to
    ``os.cpu_count()`` where affinity masks don't exist (e.g. macOS).
    """
    try:
        return len(os.sched_getaffinity(0)) or (os.cpu_count() or 1)
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_wildscan_bench(
    scale: float = 0.01,
    seed: int = 7,
    jobs_values: tuple[int, ...] = (1, 4),
    shards: int | None = None,
    repeats: int = 1,
) -> dict:
    """Time full wild scans (generate + execute + detect) per jobs value.

    Every run uses the same ``(seed, scale, shards)`` so the engine's
    determinism contract guarantees identical results — only wall-clock
    differs. ``shards`` defaults to the engine's auto rule; pass an
    explicit value (e.g. 8) to force sharding at tiny benchmark scales.
    Returns the report dict (see ``write_artifact`` for the schema).
    """
    from ..workload.generator import WildScanConfig, WildScanner

    runs = []
    reference_hashes: list[str] | None = None
    for jobs in jobs_values:
        config = WildScanConfig(scale=scale, seed=seed, jobs=jobs, shards=shards)
        best = None
        total = detected = 0
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = WildScanner(config).run()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            total, detected = result.total_transactions, result.detected_count
            hashes = [d.tx_hash for d in result.detections]
            if reference_hashes is None:
                reference_hashes = hashes
            elif hashes != reference_hashes:
                raise AssertionError(
                    f"determinism violation: jobs={jobs} changed the detections"
                )
        runs.append(
            {
                "jobs": jobs,
                "elapsed_s": round(best, 4),
                "txs_per_s": round(total / best, 1) if best else 0.0,
                "total_transactions": total,
                "detected": detected,
            }
        )
    by_jobs = {run["jobs"]: run for run in runs}
    speedup = None
    if 1 in by_jobs and len(by_jobs) > 1:
        fastest_parallel = min(
            (run for run in runs if run["jobs"] != 1), key=lambda run: run["elapsed_s"]
        )
        if fastest_parallel["elapsed_s"]:
            speedup = round(
                by_jobs[1]["elapsed_s"] / fastest_parallel["elapsed_s"], 2
            )
    return {
        "benchmark": "wildscan_throughput",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "runs": runs,
        "speedup_best_parallel_vs_sequential": speedup,
    }


def run_stream_bench(
    scale: float = 0.01,
    seed: int = 7,
    jobs_values: tuple[int, ...] = (1, 4),
    shards: int | None = None,
    queue_depth: int | None = None,
    block_size: int | None = None,
) -> dict:
    """Time the streaming pipeline against the batch engine it must match.

    Runs the batch scan once as the reference, then a streaming run per
    ``jobs`` value with the same ``(seed, scale, shards)``; raises if any
    streaming run's detections differ from the batch result (the engine's
    identity contract), and records per-block latency percentiles,
    throughput and the queue high-watermark for ``BENCH_stream.json``.
    """
    from ..workload.generator import WildScanConfig, WildScanner
    from .stream import DEFAULT_BLOCK_SIZE, DEFAULT_QUEUE_DEPTH, StreamEngine

    queue_depth = queue_depth if queue_depth is not None else DEFAULT_QUEUE_DEPTH
    block_size = block_size if block_size is not None else DEFAULT_BLOCK_SIZE

    batch_config = WildScanConfig(scale=scale, seed=seed, jobs=1, shards=shards)
    start = time.perf_counter()
    batch = WildScanner(batch_config).run()
    batch_elapsed = time.perf_counter() - start
    reference_hashes = [d.tx_hash for d in batch.detections]

    runs = []
    for jobs in jobs_values:
        config = WildScanConfig(scale=scale, seed=seed, jobs=jobs, shards=shards)
        engine = StreamEngine(config, queue_depth=queue_depth, block_size=block_size)
        streamed = engine.run()
        hashes = [d.tx_hash for d in streamed.result.detections]
        if hashes != reference_hashes:
            raise AssertionError(
                f"identity violation: streaming at jobs={jobs} changed the "
                f"detections relative to the batch engine"
            )
        runs.append(
            {
                "jobs": jobs,
                "elapsed_s": round(streamed.elapsed_s, 4),
                "txs_per_s": round(streamed.txs_per_s, 1),
                "blocks": len(streamed.blocks),
                "block_latency_ms_p50": round(streamed.latency_percentile(0.50), 3),
                "block_latency_ms_p95": round(streamed.latency_percentile(0.95), 3),
                "max_queue_depth": streamed.max_queue_depth,
                "detected": streamed.result.detected_count,
                "total_transactions": streamed.total_transactions,
            }
        )
    return {
        "benchmark": "stream_throughput",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "queue_depth": queue_depth,
        "block_size": block_size,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "batch_elapsed_s": round(batch_elapsed, 4),
        "batch_detected": batch.detected_count,
        "runs": runs,
    }


def run_cluster_bench(
    scale: float = 0.01,
    seed: int = 7,
    workers_values: tuple[int, ...] = (1, 2),
    shards: int | None = None,
    heartbeat_timeout: float | None = None,
    elastic: bool = False,
) -> dict:
    """Time distributed scans against the batch engine they must match.

    Runs the batch scan once as the reference, then a coordinator +
    local-workers run per ``workers`` value with the same
    ``(seed, scale, shards)``. The identity assertion is always on: any
    detection diverging from the batch result raises. A final
    fault-injection run kills one of two workers mid-shard and asserts
    the requeued, merged result *still* matches — the cluster's
    survival contract, pinned in ``BENCH_cluster.json`` on every smoke.

    ``elastic=True`` adds an autoscaled run: start with **zero** workers,
    let the :class:`~repro.cluster.autoscale.ElasticPool` scale to two
    against queue depth, kill one mid-shard (immediate exclusion at one
    strike), and let probation re-admit it — again asserting identity,
    with the scaling counters recorded under ``elastic_run``.
    """
    from ..cluster import ClusterWorker, WorkerKilled, run_cluster_scan
    from ..workload.generator import WildScanConfig, WildScanner

    def check_identity(result, label: str) -> None:
        hashes = [d.tx_hash for d in result.detections]
        if hashes != reference_hashes:
            raise AssertionError(
                f"identity violation: {label} changed the detections "
                f"relative to the batch engine"
            )

    batch_config = WildScanConfig(scale=scale, seed=seed, jobs=1, shards=shards)
    start = time.perf_counter()
    batch = WildScanner(batch_config).run()
    batch_elapsed = time.perf_counter() - start
    reference_hashes = [d.tx_hash for d in batch.detections]

    options = {}
    if heartbeat_timeout is not None:
        options["heartbeat_timeout"] = heartbeat_timeout

    runs = []
    for workers in workers_values:
        config = WildScanConfig(scale=scale, seed=seed, shards=shards)
        start = time.perf_counter()
        result, stats = run_cluster_scan(config, workers=workers, **options)
        elapsed = time.perf_counter() - start
        check_identity(result, f"cluster at workers={workers}")
        runs.append(
            {
                "workers": workers,
                "elapsed_s": round(elapsed, 4),
                "txs_per_s": round(result.total_transactions / elapsed, 1)
                if elapsed
                else 0.0,
                "total_transactions": result.total_transactions,
                "detected": result.detected_count,
                "requeues": stats.requeues,
                "heartbeat_requeues": stats.heartbeat_requeues,
                "duplicates_suppressed": stats.duplicates_suppressed,
                "worker_losses": stats.worker_losses,
            }
        )

    # fault injection: two workers, one dies mid-shard; the run must
    # survive (requeue) and still merge byte-identically.
    state = {"killed": False}

    def rigged_factory(index: int, address) -> ClusterWorker:
        def die(worker, shard, task):
            if not state["killed"] and task == 3:
                state["killed"] = True
                raise WorkerKilled()

        return ClusterWorker(
            address, name=f"bench-{index}", task_hook=die if index == 0 else None
        )

    config = WildScanConfig(scale=scale, seed=seed, shards=shards)
    start = time.perf_counter()
    result, stats = run_cluster_scan(
        config, workers=2, worker_factory=rigged_factory, **options
    )
    fault_elapsed = time.perf_counter() - start
    check_identity(result, "cluster with a killed worker")
    if state["killed"] and stats.worker_losses < 1:
        raise AssertionError("worker kill was not observed as a loss")
    fault_run = {
        "workers": 2,
        "killed_workers": 1 if state["killed"] else 0,
        "elapsed_s": round(fault_elapsed, 4),
        "requeues": stats.requeues,
        "worker_losses": stats.worker_losses,
        "duplicates_suppressed": stats.duplicates_suppressed,
        "detected": result.detected_count,
    }

    report = {
        "benchmark": "cluster_throughput",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "batch_elapsed_s": round(batch_elapsed, 4),
        "batch_detected": batch.detected_count,
        "runs": runs,
        "fault_run": fault_run,
    }

    if elastic:
        # elastic autoscaling: scale from zero to two workers against
        # queue depth, kill one mid-shard (one strike excludes), let the
        # pool re-admit it on probation — identity must still hold.
        state = {"killed": False}

        def elastic_factory(index: int, address) -> ClusterWorker:
            def die(worker, shard, task):
                if index == 0 and not state["killed"] and task == 3:
                    state["killed"] = True
                    raise WorkerKilled()

            return ClusterWorker(address, name=f"elastic-{index}", task_hook=die)

        config = WildScanConfig(scale=scale, seed=seed, shards=shards)
        start = time.perf_counter()
        result, stats = run_cluster_scan(
            config,
            workers=0,
            autoscale=True,
            max_workers=2,
            autoscale_options={"poll_interval": 0.02, "probation_cooldown": 0.15},
            worker_factory=elastic_factory,
            max_worker_strikes=1,
            **options,
        )
        elastic_elapsed = time.perf_counter() - start
        check_identity(result, "elastic cluster with a killed worker")
        if state["killed"] and stats.worker_losses < 1:
            raise AssertionError("worker kill was not observed as a loss")
        report["elastic_run"] = {
            "initial_workers": 0,
            "max_workers": 2,
            "killed_workers": 1 if state["killed"] else 0,
            "elapsed_s": round(elastic_elapsed, 4),
            "detected": result.detected_count,
            "requeues": stats.requeues,
            "worker_losses": stats.worker_losses,
            "workers_excluded": stats.workers_excluded,
            "workers_spawned": stats.workers_spawned,
            "workers_drained": stats.workers_drained,
            "workers_readmitted": stats.workers_readmitted,
            "probation_passes": stats.probation_passes,
            "probation_failures": stats.probation_failures,
        }

    return report


def run_resume_bench(
    scale: float = 0.01,
    seed: int = 7,
    shards: int = 8,
    jobs: int = 1,
    interrupt_after: int | None = None,
) -> dict:
    """Time a journaled cold scan against resuming an interrupted one.

    Three runs over the same ``(seed, scale, shards)``, all journaled to
    a :class:`~repro.runtime.ledger.RunLedger`:

    1. **cold** — fresh ledger, every shard executed and recorded;
    2. **resumed** — a ledger pre-seeded with the first
       ``interrupt_after`` shards (default: half), simulating a run
       killed mid-flight; only the remainder is scheduled;
    3. **no-op resume** — the completed cold ledger reopened; zero
       shards execute and the result decodes straight from the journal.

    The identity assertion is always on: every run's detections must
    match the cold run bit for bit. Wall-clock only lands in the report
    (``speedup_resumed_vs_cold``); budget enforcement lives in
    ``benchmarks/test_bench_resume.py`` behind ``REPRO_BENCH_STRICT=1``.
    """
    import tempfile

    from ..runtime import RunLedger
    from ..workload.generator import WildScanConfig
    from .plan import build_schedule, shard_schedule
    from .scan import ScanEngine, run_shard

    if shards < 2:
        raise ValueError("run_resume_bench needs at least 2 shards")
    interrupted = interrupt_after if interrupt_after is not None else shards // 2
    if not 0 < interrupted < shards:
        raise ValueError(
            f"interrupt_after must fall inside (0, {shards}), got {interrupted}"
        )

    config = WildScanConfig(scale=scale, seed=seed, jobs=jobs, shards=shards)

    def check_identity(result, label: str) -> None:
        hashes = [d.tx_hash for d in result.detections]
        if hashes != reference_hashes:
            raise AssertionError(
                f"identity violation: {label} changed the detections "
                f"relative to the cold journaled run"
            )

    with tempfile.TemporaryDirectory(prefix="repro-resume-bench-") as tmp:
        tmp = Path(tmp)

        # 1. cold: journal every shard from scratch.
        cold_engine = ScanEngine(config, ledger=tmp / "cold.ledger")
        start = time.perf_counter()
        cold = cold_engine.run()
        cold_elapsed = time.perf_counter() - start
        reference_hashes = [d.tx_hash for d in cold.detections]

        # 2. resumed: pre-seed a ledger with the first ``interrupted``
        # shards (the work a killed run left behind), then resume.
        parts = shard_schedule(build_schedule(scale, seed), shards)
        seeded = RunLedger.create(tmp / "killed.ledger", config, shards)
        for index in range(interrupted):
            seeded.record(run_shard((config, index, shards, parts[index])))
        seeded.close()

        resumed_engine = ScanEngine(config, ledger=tmp / "killed.ledger")
        start = time.perf_counter()
        resumed = resumed_engine.run()
        resumed_elapsed = time.perf_counter() - start
        check_identity(resumed, f"resume after {interrupted} shards")

        # 3. no-op resume: the completed cold ledger schedules nothing.
        noop_engine = ScanEngine(config, ledger=tmp / "cold.ledger")
        start = time.perf_counter()
        noop = noop_engine.run()
        noop_elapsed = time.perf_counter() - start
        check_identity(noop, "no-op resume of a complete ledger")

        cold_ledger = cold_engine.ledger
        resumed_ledger = resumed_engine.ledger
        noop_ledger = noop_engine.ledger

    speedup = round(cold_elapsed / resumed_elapsed, 2) if resumed_elapsed else None
    return {
        "benchmark": "resume_ledger",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "jobs": jobs,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "cold_run": {
            "elapsed_s": round(cold_elapsed, 4),
            "shards_resumed": cold_ledger.resumed_count,
            "shards_recorded": cold_ledger.recorded_count,
            "total_transactions": cold.total_transactions,
            "detected": cold.detected_count,
        },
        "resumed_run": {
            "interrupted_after": interrupted,
            "elapsed_s": round(resumed_elapsed, 4),
            "shards_resumed": resumed_ledger.resumed_count,
            "shards_recorded": resumed_ledger.recorded_count,
            "detected": resumed.detected_count,
        },
        "noop_resume": {
            "elapsed_s": round(noop_elapsed, 4),
            "shards_resumed": noop_ledger.resumed_count,
            "shards_recorded": noop_ledger.recorded_count,
            "detected": noop.detected_count,
        },
        "speedup_resumed_vs_cold": speedup,
    }


def run_fullscale_bench(
    scale: float = 1.0,
    seed: int = 7,
    jobs_values: tuple[int, ...] | None = None,
    shards: int | None = None,
    profile_path: str | Path | None = None,
) -> dict:
    """The end-to-end full-scale benchmark: scale-1.0 scans, all paths.

    Four measured configurations over the same ``(seed, scale, shards)``:

    1. **sequential** (``jobs=1``) — the reference run;
    2. **parallel** — one run per remaining ``jobs_values`` entry
       (default: the effective CPU count), chunk-submitted over the
       process pool;
    3. **pre-screen off** — the fastest jobs value with ``prescreen=False``;
    4. **warm-start** — a sequential rerun in the same process, so every
       shard build amortizes through the context-snapshot cache; this run
       also profiles (``profile=True``) and its merged stage profile is
       written to ``profile_path`` when given.

    The identity assertion is always on: every run's detections must be
    byte-identical (via the wire encoding) to the sequential reference —
    across jobs counts, with/without pre-screen, with/without snapshot
    warm-start. Wall-clock lands in the report only; speedup enforcement
    lives in ``benchmarks/test_bench_fullscale.py`` behind
    ``REPRO_BENCH_STRICT=1`` (a 1-CPU runner cannot beat sequential).
    """
    from ..workload.generator import WildScanConfig
    from .scan import ScanEngine, clear_context_snapshots
    from .wire import detection_to_wire

    cpus = effective_cpu_count()
    if jobs_values is None:
        jobs_values = (1, cpus if cpus > 1 else 2)
    jobs_values = tuple(dict.fromkeys(jobs_values))
    if jobs_values[0] != 1:
        jobs_values = (1, *jobs_values)

    def fingerprint(result) -> str:
        return json.dumps(
            {
                "total": result.total_transactions,
                "detections": [detection_to_wire(d) for d in result.detections],
                "rows": {
                    name: [row.n, row.tp, row.fp]
                    for name, row in sorted(result.rows.items())
                },
            },
            sort_keys=True,
        )

    def timed_run(config):
        engine = ScanEngine(config)
        start = time.perf_counter()
        result = engine.run()
        return result, time.perf_counter() - start, engine

    runs = []
    reference = None
    total = detected = 0
    warm_result = warm_elapsed = warm_engine = None
    for jobs in jobs_values:
        clear_context_snapshots()  # cold build per run: honest timings
        config = WildScanConfig(scale=scale, seed=seed, jobs=jobs, shards=shards)
        result, elapsed, _ = timed_run(config)
        fp = fingerprint(result)
        if reference is None:
            reference = fp
        elif fp != reference:
            raise AssertionError(
                f"identity violation: jobs={jobs} changed the detections"
            )
        total, detected = result.total_transactions, result.detected_count
        runs.append(
            {
                "jobs": jobs,
                "elapsed_s": round(elapsed, 4),
                "txs_per_s": round(total / elapsed, 1) if elapsed else 0.0,
                "total_transactions": total,
                "detected": detected,
            }
        )
        if jobs == 1:
            # 4. warm start, measured while the sequential run's in-process
            # snapshot cache is still hot (parallel runs build in worker
            # subprocesses, so the parent cache would be cold afterwards).
            # This run also profiles; the merged stage profile is the one
            # written to ``profile_path``.
            warm_config = WildScanConfig(
                scale=scale, seed=seed, jobs=1, shards=shards, profile=True
            )
            warm_result, warm_elapsed, warm_engine = timed_run(warm_config)
            if fingerprint(warm_result) != reference:
                raise AssertionError(
                    "identity violation: snapshot warm-start changed the "
                    "detections"
                )

    by_jobs = {run["jobs"]: run for run in runs}
    sequential_elapsed = by_jobs[1]["elapsed_s"]
    speedup = None
    parallel_runs = [run for run in runs if run["jobs"] != 1]
    if parallel_runs:
        fastest = min(parallel_runs, key=lambda run: run["elapsed_s"])
        if fastest["elapsed_s"]:
            speedup = round(sequential_elapsed / fastest["elapsed_s"], 2)
        fastest_jobs = fastest["jobs"]
    else:
        fastest_jobs = 1

    # 3. pre-screen off: the skip must be invisible in the result bytes.
    clear_context_snapshots()
    off_config = WildScanConfig(
        scale=scale, seed=seed, jobs=fastest_jobs, shards=shards, prescreen=False
    )
    off_result, off_elapsed, _ = timed_run(off_config)
    if fingerprint(off_result) != reference:
        raise AssertionError(
            "identity violation: disabling the pre-screen changed the detections"
        )

    warm_counters = (warm_engine.profile or {}).get("counters", {})

    report = {
        "benchmark": "fullscale_wildscan",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "cpu_count": cpus,
        "os_cpu_count": os.cpu_count(),
        "total_transactions": total,
        "detected": detected,
        "runs": runs,
        "speedup_best_parallel_vs_sequential": speedup,
        "prescreen_off_run": {
            "jobs": fastest_jobs,
            "elapsed_s": round(off_elapsed, 4),
            "identical": True,
        },
        "warm_start_run": {
            "jobs": 1,
            "elapsed_s": round(warm_elapsed, 4),
            "identical": True,
            "warm_starts": warm_counters.get("warm_starts", 0),
            "speedup_vs_cold_sequential": round(
                sequential_elapsed / warm_elapsed, 2
            )
            if warm_elapsed
            else None,
        },
    }
    if profile_path is not None and warm_engine.profile is not None:
        from ..runtime.profile import write_profile

        report["profile_artifact"] = str(
            write_profile(warm_engine.profile, profile_path)
        )
    return report


def write_artifact(report: dict, path: str | Path = DEFAULT_ARTIFACT) -> Path:
    """Write the benchmark report as a stable, diff-friendly JSON file."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
