"""Wild-scan throughput benchmark: sequential vs. sharded txs/sec.

Produces the ``BENCH_wildscan.json`` artifact that tracks the scan
engine's performance trajectory from PR 1 onward. Library-first so the
tier-1 suite, ``benchmarks/test_bench_wildscan.py`` and
``benchmarks/run_smoke.py`` all share one implementation::

    from repro.engine.bench import run_wildscan_bench, write_artifact

    report = run_wildscan_bench(scale=0.01, jobs_values=(1, 4))
    write_artifact(report, "BENCH_wildscan.json")
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = [
    "effective_cpu_count",
    "run_wildscan_bench",
    "run_stream_bench",
    "run_windowed_bench",
    "run_cluster_bench",
    "run_resume_bench",
    "run_fullscale_bench",
    "run_failover_bench",
    "run_service_bench",
    "run_robustness_bench",
    "write_artifact",
    "DEFAULT_ARTIFACT",
    "DEFAULT_STREAM_ARTIFACT",
    "DEFAULT_WINDOWED_ARTIFACT",
    "DEFAULT_CLUSTER_ARTIFACT",
    "DEFAULT_RESUME_ARTIFACT",
    "DEFAULT_FULLSCALE_ARTIFACT",
    "DEFAULT_FAILOVER_ARTIFACT",
    "DEFAULT_SERVICE_ARTIFACT",
    "DEFAULT_ROBUSTNESS_ARTIFACT",
]

#: canonical artifact location (repo root, tracked across PRs).
DEFAULT_ARTIFACT = "BENCH_wildscan.json"

#: streaming-pipeline artifact (repo root, tracked across PRs).
DEFAULT_STREAM_ARTIFACT = "BENCH_stream.json"

#: cross-transaction windowed-detection artifact (repo root, tracked across PRs).
DEFAULT_WINDOWED_ARTIFACT = "BENCH_windowed.json"

#: distributed-scan artifact (repo root, tracked across PRs).
DEFAULT_CLUSTER_ARTIFACT = "BENCH_cluster.json"

#: run-ledger resume artifact (repo root, tracked across PRs).
DEFAULT_RESUME_ARTIFACT = "BENCH_resume.json"

#: full-scale (scale=1.0) end-to-end artifact (repo root, tracked across PRs).
DEFAULT_FULLSCALE_ARTIFACT = "BENCH_fullscale.json"

#: coordinator-failover survivability artifact (repo root, tracked across PRs).
DEFAULT_FAILOVER_ARTIFACT = "BENCH_failover.json"

#: resident scan-service artifact (repo root, tracked across PRs).
DEFAULT_SERVICE_ARTIFACT = "BENCH_service.json"

#: artifact written by :func:`run_robustness_bench`.
DEFAULT_ROBUSTNESS_ARTIFACT = "BENCH_robustness.json"


def effective_cpu_count() -> int:
    """CPUs this process may actually use.

    ``os.cpu_count()`` reports the host's cores, but cgroup/affinity
    limits (CI runners, containers, ``taskset``) can pin the process to
    fewer — the honest denominator for any speedup claim. Falls back to
    ``os.cpu_count()`` where affinity masks don't exist (e.g. macOS).
    """
    try:
        return len(os.sched_getaffinity(0)) or (os.cpu_count() or 1)
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_wildscan_bench(
    scale: float = 0.01,
    seed: int = 7,
    jobs_values: tuple[int, ...] = (1, 4),
    shards: int | None = None,
    repeats: int = 1,
) -> dict:
    """Time full wild scans (generate + execute + detect) per jobs value.

    Every run uses the same ``(seed, scale, shards)`` so the engine's
    determinism contract guarantees identical results — only wall-clock
    differs. ``shards`` defaults to the engine's auto rule; pass an
    explicit value (e.g. 8) to force sharding at tiny benchmark scales.
    Returns the report dict (see ``write_artifact`` for the schema).
    """
    from ..workload.generator import WildScanConfig, WildScanner

    runs = []
    reference_hashes: list[str] | None = None
    for jobs in jobs_values:
        config = WildScanConfig(scale=scale, seed=seed, jobs=jobs, shards=shards)
        best = None
        total = detected = 0
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = WildScanner(config).run()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            total, detected = result.total_transactions, result.detected_count
            hashes = [d.tx_hash for d in result.detections]
            if reference_hashes is None:
                reference_hashes = hashes
            elif hashes != reference_hashes:
                raise AssertionError(
                    f"determinism violation: jobs={jobs} changed the detections"
                )
        runs.append(
            {
                "jobs": jobs,
                "elapsed_s": round(best, 4),
                "txs_per_s": round(total / best, 1) if best else 0.0,
                "total_transactions": total,
                "detected": detected,
            }
        )
    by_jobs = {run["jobs"]: run for run in runs}
    speedup = None
    if 1 in by_jobs and len(by_jobs) > 1:
        fastest_parallel = min(
            (run for run in runs if run["jobs"] != 1), key=lambda run: run["elapsed_s"]
        )
        if fastest_parallel["elapsed_s"]:
            speedup = round(
                by_jobs[1]["elapsed_s"] / fastest_parallel["elapsed_s"], 2
            )
    return {
        "benchmark": "wildscan_throughput",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "runs": runs,
        "speedup_best_parallel_vs_sequential": speedup,
    }


def run_stream_bench(
    scale: float = 0.01,
    seed: int = 7,
    jobs_values: tuple[int, ...] = (1, 4),
    shards: int | None = None,
    queue_depth: int | None = None,
    block_size: int | None = None,
) -> dict:
    """Time the streaming pipeline against the batch engine it must match.

    Runs the batch scan once as the reference, then a streaming run per
    ``jobs`` value with the same ``(seed, scale, shards)``; raises if any
    streaming run's detections differ from the batch result (the engine's
    identity contract), and records per-block latency percentiles,
    throughput and the queue high-watermark for ``BENCH_stream.json``.
    """
    from ..workload.generator import WildScanConfig, WildScanner
    from .stream import DEFAULT_BLOCK_SIZE, DEFAULT_QUEUE_DEPTH, StreamEngine

    queue_depth = queue_depth if queue_depth is not None else DEFAULT_QUEUE_DEPTH
    block_size = block_size if block_size is not None else DEFAULT_BLOCK_SIZE

    batch_config = WildScanConfig(scale=scale, seed=seed, jobs=1, shards=shards)
    start = time.perf_counter()
    batch = WildScanner(batch_config).run()
    batch_elapsed = time.perf_counter() - start
    reference_hashes = [d.tx_hash for d in batch.detections]

    runs = []
    for jobs in jobs_values:
        config = WildScanConfig(scale=scale, seed=seed, jobs=jobs, shards=shards)
        engine = StreamEngine(config, queue_depth=queue_depth, block_size=block_size)
        streamed = engine.run()
        hashes = [d.tx_hash for d in streamed.result.detections]
        if hashes != reference_hashes:
            raise AssertionError(
                f"identity violation: streaming at jobs={jobs} changed the "
                f"detections relative to the batch engine"
            )
        runs.append(
            {
                "jobs": jobs,
                "elapsed_s": round(streamed.elapsed_s, 4),
                "txs_per_s": round(streamed.txs_per_s, 1),
                "blocks": len(streamed.blocks),
                "block_latency_ms_p50": round(streamed.latency_percentile(0.50), 3),
                "block_latency_ms_p95": round(streamed.latency_percentile(0.95), 3),
                "max_queue_depth": streamed.max_queue_depth,
                "detected": streamed.result.detected_count,
                "total_transactions": streamed.total_transactions,
            }
        )
    return {
        "benchmark": "stream_throughput",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "queue_depth": queue_depth,
        "block_size": block_size,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "batch_elapsed_s": round(batch_elapsed, 4),
        "batch_detected": batch.detected_count,
        "runs": runs,
    }


def run_windowed_bench(
    scale: float = 0.01,
    seed: int = 7,
    jobs_values: tuple[int, ...] = (1, 4),
    shards: int | None = None,
    split_attacks: int = 2,
    window_blocks: int | None = None,
    queue_depth: int | None = None,
    block_size: int | None = None,
) -> dict:
    """Bench cross-transaction windowed detection for ``BENCH_windowed.json``.

    A batch reference run over a schedule carrying ``split_attacks``
    labelled split-attack groups, then per ``jobs`` value a windowed-off
    and a windowed-on streaming run of the same config. Three contracts
    are asserted on every invocation, strict mode or not:

    1. **per-tx identity** — both streaming runs' per-transaction
       detections match the batch reference exactly; enabling the
       window must never perturb the per-transaction results;
    2. **per-tx miss** — no transaction contributing to a labelled
       windowed detection appears in the per-transaction detections
       (each split round is individually benign, by construction);
    3. **windowed recall** — the windowed matcher recovers every
       labelled split group (recall 1.0 where per-tx recall is 0).

    Per-block latency percentiles for both modes land in the report so
    the window's overhead is visible; the latency *budget* only arms in
    ``benchmarks/test_bench_windowed.py`` behind ``REPRO_BENCH_STRICT=1``.
    """
    from ..leishen.window import windowed_recall
    from ..workload.generator import WildScanConfig, WildScanner
    from .stream import (
        DEFAULT_BLOCK_SIZE,
        DEFAULT_QUEUE_DEPTH,
        DEFAULT_WINDOW_BLOCKS,
        StreamEngine,
    )

    if split_attacks < 1:
        raise ValueError(f"split_attacks must be >= 1, got {split_attacks}")
    window_blocks = (
        window_blocks if window_blocks is not None else DEFAULT_WINDOW_BLOCKS
    )
    queue_depth = queue_depth if queue_depth is not None else DEFAULT_QUEUE_DEPTH
    block_size = block_size if block_size is not None else DEFAULT_BLOCK_SIZE

    batch_config = WildScanConfig(
        scale=scale, seed=seed, jobs=1, shards=shards, split_attacks=split_attacks
    )
    start = time.perf_counter()
    batch = WildScanner(batch_config).run()
    batch_elapsed = time.perf_counter() - start
    reference_hashes = [d.tx_hash for d in batch.detections]

    def stream_run(jobs: int, windowed: bool):
        config = WildScanConfig(
            scale=scale, seed=seed, jobs=jobs, shards=shards,
            split_attacks=split_attacks,
        )
        engine = StreamEngine(
            config, queue_depth=queue_depth, block_size=block_size,
            windowed=windowed, window_blocks=window_blocks,
        )
        streamed = engine.run()
        hashes = [d.tx_hash for d in streamed.result.detections]
        if hashes != reference_hashes:
            mode = "windowed" if windowed else "plain"
            raise AssertionError(
                f"identity violation: {mode} streaming at jobs={jobs} changed "
                f"the per-transaction detections relative to the batch engine"
            )
        return streamed

    runs = []
    for jobs in jobs_values:
        off = stream_run(jobs, windowed=False)
        on = stream_run(jobs, windowed=True)

        labelled = [d for d in on.windowed if d.split_group is not None]
        recall = windowed_recall(on.windowed, range(split_attacks))
        if recall < 1.0:
            raise AssertionError(
                f"windowed recall at jobs={jobs} is {recall:.0%}: the "
                f"window missed a labelled split-attack group"
            )
        split_txs = {tx for d in labelled for tx in d.tx_hashes}
        leaked = split_txs.intersection(reference_hashes)
        if leaked:
            raise AssertionError(
                f"per-tx contract violation: split-attack round(s) "
                f"{sorted(leaked)} were detected per-transaction — the "
                f"split scenario is not actually split"
            )
        runs.append(
            {
                "jobs": jobs,
                "off_elapsed_s": round(off.elapsed_s, 4),
                "on_elapsed_s": round(on.elapsed_s, 4),
                "off_block_latency_ms_p95": round(
                    off.latency_percentile(0.95), 3
                ),
                "on_block_latency_ms_p50": round(on.latency_percentile(0.50), 3),
                "on_block_latency_ms_p95": round(on.latency_percentile(0.95), 3),
                "windowed_detections": len(on.windowed),
                "labelled_detections": len(labelled),
                "split_recall_windowed": recall,
                "split_recall_per_tx": 0.0,
                "per_tx_detected": on.result.detected_count,
                "total_transactions": on.total_transactions,
            }
        )
    return {
        "benchmark": "windowed_detection",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "split_attacks": split_attacks,
        "window_blocks": window_blocks,
        "queue_depth": queue_depth,
        "block_size": block_size,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "batch_elapsed_s": round(batch_elapsed, 4),
        "batch_detected": batch.detected_count,
        "runs": runs,
    }


def run_cluster_bench(
    scale: float = 0.01,
    seed: int = 7,
    workers_values: tuple[int, ...] = (1, 2),
    shards: int | None = None,
    heartbeat_timeout: float | None = None,
    elastic: bool = False,
) -> dict:
    """Time distributed scans against the batch engine they must match.

    Runs the batch scan once as the reference, then a coordinator +
    local-workers run per ``workers`` value with the same
    ``(seed, scale, shards)``. The identity assertion is always on: any
    detection diverging from the batch result raises. A final
    fault-injection run kills one of two workers mid-shard and asserts
    the requeued, merged result *still* matches — the cluster's
    survival contract, pinned in ``BENCH_cluster.json`` on every smoke.

    ``elastic=True`` adds an autoscaled run: start with **zero** workers,
    let the :class:`~repro.cluster.autoscale.ElasticPool` scale to two
    against queue depth, kill one mid-shard (immediate exclusion at one
    strike), and let probation re-admit it — again asserting identity,
    with the scaling counters recorded under ``elastic_run``.
    """
    from ..cluster import ClusterWorker, WorkerKilled, run_cluster_scan
    from ..workload.generator import WildScanConfig, WildScanner

    def check_identity(result, label: str) -> None:
        hashes = [d.tx_hash for d in result.detections]
        if hashes != reference_hashes:
            raise AssertionError(
                f"identity violation: {label} changed the detections "
                f"relative to the batch engine"
            )

    batch_config = WildScanConfig(scale=scale, seed=seed, jobs=1, shards=shards)
    start = time.perf_counter()
    batch = WildScanner(batch_config).run()
    batch_elapsed = time.perf_counter() - start
    reference_hashes = [d.tx_hash for d in batch.detections]

    options = {}
    if heartbeat_timeout is not None:
        options["heartbeat_timeout"] = heartbeat_timeout

    runs = []
    for workers in workers_values:
        config = WildScanConfig(scale=scale, seed=seed, shards=shards)
        start = time.perf_counter()
        result, stats = run_cluster_scan(config, workers=workers, **options)
        elapsed = time.perf_counter() - start
        check_identity(result, f"cluster at workers={workers}")
        runs.append(
            {
                "workers": workers,
                "elapsed_s": round(elapsed, 4),
                "txs_per_s": round(result.total_transactions / elapsed, 1)
                if elapsed
                else 0.0,
                "total_transactions": result.total_transactions,
                "detected": result.detected_count,
                "requeues": stats.requeues,
                "heartbeat_requeues": stats.heartbeat_requeues,
                "duplicates_suppressed": stats.duplicates_suppressed,
                "worker_losses": stats.worker_losses,
            }
        )

    # fault injection: two workers, one dies mid-shard; the run must
    # survive (requeue) and still merge byte-identically.
    state = {"killed": False}

    def rigged_factory(index: int, address) -> ClusterWorker:
        def die(worker, shard, task):
            if not state["killed"] and task == 3:
                state["killed"] = True
                raise WorkerKilled()

        return ClusterWorker(
            address, name=f"bench-{index}", task_hook=die if index == 0 else None
        )

    config = WildScanConfig(scale=scale, seed=seed, shards=shards)
    start = time.perf_counter()
    result, stats = run_cluster_scan(
        config, workers=2, worker_factory=rigged_factory, **options
    )
    fault_elapsed = time.perf_counter() - start
    check_identity(result, "cluster with a killed worker")
    if state["killed"] and stats.worker_losses < 1:
        raise AssertionError("worker kill was not observed as a loss")
    fault_run = {
        "workers": 2,
        "killed_workers": 1 if state["killed"] else 0,
        "elapsed_s": round(fault_elapsed, 4),
        "requeues": stats.requeues,
        "worker_losses": stats.worker_losses,
        "duplicates_suppressed": stats.duplicates_suppressed,
        "detected": result.detected_count,
    }

    report = {
        "benchmark": "cluster_throughput",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "batch_elapsed_s": round(batch_elapsed, 4),
        "batch_detected": batch.detected_count,
        "runs": runs,
        "fault_run": fault_run,
    }

    if elastic:
        # elastic autoscaling: scale from zero to two workers against
        # queue depth, kill one mid-shard (one strike excludes), let the
        # pool re-admit it on probation — identity must still hold.
        state = {"killed": False}

        def elastic_factory(index: int, address) -> ClusterWorker:
            def die(worker, shard, task):
                if index == 0 and not state["killed"] and task == 3:
                    state["killed"] = True
                    raise WorkerKilled()

            return ClusterWorker(address, name=f"elastic-{index}", task_hook=die)

        config = WildScanConfig(scale=scale, seed=seed, shards=shards)
        start = time.perf_counter()
        result, stats = run_cluster_scan(
            config,
            workers=0,
            autoscale=True,
            max_workers=2,
            autoscale_options={"poll_interval": 0.02, "probation_cooldown": 0.15},
            worker_factory=elastic_factory,
            max_worker_strikes=1,
            **options,
        )
        elastic_elapsed = time.perf_counter() - start
        check_identity(result, "elastic cluster with a killed worker")
        if state["killed"] and stats.worker_losses < 1:
            raise AssertionError("worker kill was not observed as a loss")
        report["elastic_run"] = {
            "initial_workers": 0,
            "max_workers": 2,
            "killed_workers": 1 if state["killed"] else 0,
            "elapsed_s": round(elastic_elapsed, 4),
            "detected": result.detected_count,
            "requeues": stats.requeues,
            "worker_losses": stats.worker_losses,
            "workers_excluded": stats.workers_excluded,
            "workers_spawned": stats.workers_spawned,
            "workers_drained": stats.workers_drained,
            "workers_readmitted": stats.workers_readmitted,
            "probation_passes": stats.probation_passes,
            "probation_failures": stats.probation_failures,
        }

    return report


def run_resume_bench(
    scale: float = 0.01,
    seed: int = 7,
    shards: int = 8,
    jobs: int = 1,
    interrupt_after: int | None = None,
) -> dict:
    """Time a journaled cold scan against resuming an interrupted one.

    Three runs over the same ``(seed, scale, shards)``, all journaled to
    a :class:`~repro.runtime.ledger.RunLedger`:

    1. **cold** — fresh ledger, every shard executed and recorded;
    2. **resumed** — a ledger pre-seeded with the first
       ``interrupt_after`` shards (default: half), simulating a run
       killed mid-flight; only the remainder is scheduled;
    3. **no-op resume** — the completed cold ledger reopened; zero
       shards execute and the result decodes straight from the journal.

    The identity assertion is always on: every run's detections must
    match the cold run bit for bit. Wall-clock only lands in the report
    (``speedup_resumed_vs_cold``); budget enforcement lives in
    ``benchmarks/test_bench_resume.py`` behind ``REPRO_BENCH_STRICT=1``.
    """
    import tempfile

    from ..runtime import RunLedger
    from ..workload.generator import WildScanConfig
    from .plan import build_schedule, shard_schedule
    from .scan import ScanEngine, run_shard

    if shards < 2:
        raise ValueError("run_resume_bench needs at least 2 shards")
    interrupted = interrupt_after if interrupt_after is not None else shards // 2
    if not 0 < interrupted < shards:
        raise ValueError(
            f"interrupt_after must fall inside (0, {shards}), got {interrupted}"
        )

    config = WildScanConfig(scale=scale, seed=seed, jobs=jobs, shards=shards)

    def check_identity(result, label: str) -> None:
        hashes = [d.tx_hash for d in result.detections]
        if hashes != reference_hashes:
            raise AssertionError(
                f"identity violation: {label} changed the detections "
                f"relative to the cold journaled run"
            )

    with tempfile.TemporaryDirectory(prefix="repro-resume-bench-") as tmp:
        tmp = Path(tmp)

        # 1. cold: journal every shard from scratch.
        cold_engine = ScanEngine(config, ledger=tmp / "cold.ledger")
        start = time.perf_counter()
        cold = cold_engine.run()
        cold_elapsed = time.perf_counter() - start
        reference_hashes = [d.tx_hash for d in cold.detections]

        # 2. resumed: pre-seed a ledger with the first ``interrupted``
        # shards (the work a killed run left behind), then resume.
        parts = shard_schedule(build_schedule(scale, seed), shards)
        seeded = RunLedger.create(tmp / "killed.ledger", config, shards)
        for index in range(interrupted):
            seeded.record(run_shard((config, index, shards, parts[index])))
        seeded.close()

        resumed_engine = ScanEngine(config, ledger=tmp / "killed.ledger")
        start = time.perf_counter()
        resumed = resumed_engine.run()
        resumed_elapsed = time.perf_counter() - start
        check_identity(resumed, f"resume after {interrupted} shards")

        # 3. no-op resume: the completed cold ledger schedules nothing.
        noop_engine = ScanEngine(config, ledger=tmp / "cold.ledger")
        start = time.perf_counter()
        noop = noop_engine.run()
        noop_elapsed = time.perf_counter() - start
        check_identity(noop, "no-op resume of a complete ledger")

        cold_ledger = cold_engine.ledger
        resumed_ledger = resumed_engine.ledger
        noop_ledger = noop_engine.ledger

    speedup = round(cold_elapsed / resumed_elapsed, 2) if resumed_elapsed else None
    return {
        "benchmark": "resume_ledger",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "jobs": jobs,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "cold_run": {
            "elapsed_s": round(cold_elapsed, 4),
            "shards_resumed": cold_ledger.resumed_count,
            "shards_recorded": cold_ledger.recorded_count,
            "total_transactions": cold.total_transactions,
            "detected": cold.detected_count,
        },
        "resumed_run": {
            "interrupted_after": interrupted,
            "elapsed_s": round(resumed_elapsed, 4),
            "shards_resumed": resumed_ledger.resumed_count,
            "shards_recorded": resumed_ledger.recorded_count,
            "detected": resumed.detected_count,
        },
        "noop_resume": {
            "elapsed_s": round(noop_elapsed, 4),
            "shards_resumed": noop_ledger.resumed_count,
            "shards_recorded": noop_ledger.recorded_count,
            "detected": noop.detected_count,
        },
        "speedup_resumed_vs_cold": speedup,
    }


def run_fullscale_bench(
    scale: float = 1.0,
    seed: int = 7,
    jobs_values: tuple[int, ...] | None = None,
    shards: int | None = None,
    profile_path: str | Path | None = None,
) -> dict:
    """The end-to-end full-scale benchmark: scale-1.0 scans, all paths.

    Four measured configurations over the same ``(seed, scale, shards)``:

    1. **sequential** (``jobs=1``) — the reference run;
    2. **parallel** — one run per remaining ``jobs_values`` entry
       (default: the effective CPU count), chunk-submitted over the
       process pool;
    3. **pre-screen off** — the fastest jobs value with ``prescreen=False``;
    4. **warm-start** — a sequential rerun in the same process, so every
       shard build amortizes through the context-snapshot cache; this run
       also profiles (``profile=True``) and its merged stage profile is
       written to ``profile_path`` when given.

    The identity assertion is always on: every run's detections must be
    byte-identical (via the wire encoding) to the sequential reference —
    across jobs counts, with/without pre-screen, with/without snapshot
    warm-start. Wall-clock lands in the report only; speedup enforcement
    lives in ``benchmarks/test_bench_fullscale.py`` behind
    ``REPRO_BENCH_STRICT=1`` (a 1-CPU runner cannot beat sequential).
    """
    from ..workload.generator import WildScanConfig
    from .scan import ScanEngine, clear_context_snapshots
    from .wire import detection_to_wire

    cpus = effective_cpu_count()
    if jobs_values is None:
        jobs_values = (1, cpus if cpus > 1 else 2)
    jobs_values = tuple(dict.fromkeys(jobs_values))
    if jobs_values[0] != 1:
        jobs_values = (1, *jobs_values)

    def fingerprint(result) -> str:
        return json.dumps(
            {
                "total": result.total_transactions,
                "detections": [detection_to_wire(d) for d in result.detections],
                "rows": {
                    name: [row.n, row.tp, row.fp]
                    for name, row in sorted(result.rows.items())
                },
            },
            sort_keys=True,
        )

    def timed_run(config):
        engine = ScanEngine(config)
        start = time.perf_counter()
        result = engine.run()
        return result, time.perf_counter() - start, engine

    runs = []
    reference = None
    total = detected = 0
    warm_result = warm_elapsed = warm_engine = None
    for jobs in jobs_values:
        clear_context_snapshots()  # cold build per run: honest timings
        config = WildScanConfig(scale=scale, seed=seed, jobs=jobs, shards=shards)
        result, elapsed, _ = timed_run(config)
        fp = fingerprint(result)
        if reference is None:
            reference = fp
        elif fp != reference:
            raise AssertionError(
                f"identity violation: jobs={jobs} changed the detections"
            )
        total, detected = result.total_transactions, result.detected_count
        runs.append(
            {
                "jobs": jobs,
                "elapsed_s": round(elapsed, 4),
                "txs_per_s": round(total / elapsed, 1) if elapsed else 0.0,
                "total_transactions": total,
                "detected": detected,
            }
        )
        if jobs == 1:
            # 4. warm start, measured while the sequential run's in-process
            # snapshot cache is still hot (parallel runs build in worker
            # subprocesses, so the parent cache would be cold afterwards).
            # This run also profiles; the merged stage profile is the one
            # written to ``profile_path``.
            warm_config = WildScanConfig(
                scale=scale, seed=seed, jobs=1, shards=shards, profile=True
            )
            warm_result, warm_elapsed, warm_engine = timed_run(warm_config)
            if fingerprint(warm_result) != reference:
                raise AssertionError(
                    "identity violation: snapshot warm-start changed the "
                    "detections"
                )

    by_jobs = {run["jobs"]: run for run in runs}
    sequential_elapsed = by_jobs[1]["elapsed_s"]
    speedup = None
    parallel_runs = [run for run in runs if run["jobs"] != 1]
    if parallel_runs:
        fastest = min(parallel_runs, key=lambda run: run["elapsed_s"])
        if fastest["elapsed_s"]:
            speedup = round(sequential_elapsed / fastest["elapsed_s"], 2)
        fastest_jobs = fastest["jobs"]
    else:
        fastest_jobs = 1

    # 3. pre-screen off: the skip must be invisible in the result bytes.
    clear_context_snapshots()
    off_config = WildScanConfig(
        scale=scale, seed=seed, jobs=fastest_jobs, shards=shards, prescreen=False
    )
    off_result, off_elapsed, _ = timed_run(off_config)
    if fingerprint(off_result) != reference:
        raise AssertionError(
            "identity violation: disabling the pre-screen changed the detections"
        )

    warm_counters = (warm_engine.profile or {}).get("counters", {})

    report = {
        "benchmark": "fullscale_wildscan",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "cpu_count": cpus,
        "os_cpu_count": os.cpu_count(),
        "total_transactions": total,
        "detected": detected,
        "runs": runs,
        "speedup_best_parallel_vs_sequential": speedup,
        "prescreen_off_run": {
            "jobs": fastest_jobs,
            "elapsed_s": round(off_elapsed, 4),
            "identical": True,
        },
        "warm_start_run": {
            "jobs": 1,
            "elapsed_s": round(warm_elapsed, 4),
            "identical": True,
            "warm_starts": warm_counters.get("warm_starts", 0),
            "speedup_vs_cold_sequential": round(
                sequential_elapsed / warm_elapsed, 2
            )
            if warm_elapsed
            else None,
        },
    }
    if profile_path is not None and warm_engine.profile is not None:
        from ..runtime.profile import write_profile

        report["profile_artifact"] = str(
            write_profile(warm_engine.profile, profile_path)
        )
    return report


def _failover_primary_main(
    path: str, port: int, scale: float, seed: int, shards: int | None
) -> None:
    """Forked child: a primary coordinator serving a journaled scan.

    The failover bench SIGKILLs this process mid-run — no cleanup, no
    goodbye, possibly a torn journal tail.
    """
    from ..cluster import Coordinator
    from ..workload.generator import WildScanConfig

    config = WildScanConfig(scale=scale, seed=seed, shards=shards)
    coordinator = Coordinator(
        config, host="127.0.0.1", port=port, ledger=path, local_fallback=False
    )
    coordinator.start()
    coordinator.run()


def _journaled_ledger_shards(path: Path) -> int:
    """Intact journaled shards (snapshot prefix + tail; torn tail ignored)."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (FileNotFoundError, UnicodeDecodeError):
        return 0
    count = 0
    for line in lines[1:]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if record.get("kind") == "shard":
            count += 1
        elif record.get("kind") == "snapshot":
            count += record.get("shards", 0)
    return count


def run_failover_bench(
    scale: float = 0.01,
    seed: int = 7,
    shards: int | None = 8,
    workers: int = 2,
    autoscale: bool = False,
    task_delay: float = 0.005,
    compact_shard_counts: tuple[int, ...] = (8, 32),
) -> dict:
    """The survivability benchmark: kill the primary, adopt, stay identical.

    Two measured sections for ``BENCH_failover.json``:

    1. **failover** — a primary coordinator runs a journaled scan in a
       forked child process while reconnecting workers (multi-address
       connect list: primary + standby) execute deliberately slowed
       shards. As soon as one shard is journaled the child is SIGKILLed.
       The hot standby's probe detects the refused serve socket, adopts
       the journal (resuming every journaled shard, truncating any torn
       tail), the workers fail over through their reconnect loop —
       optionally alongside an :class:`~repro.cluster.autoscale.ElasticPool`
       (``autoscale=True``) on the adopted coordinator — and the scan
       finishes. Recorded: detection/adoption/recovery wall-clock,
       shards journaled at the kill, resumed shards, worker failovers.
       Where ``fork`` is unavailable the kill degrades to a pre-seeded
       journal with a never-alive primary (``"real_kill": false``).
    2. **compaction** — for each shard count, a fully journaled ledger is
       timed through ``RunLedger.open()`` before and after compaction:
       open cost tracks the journaled *record* count, so the compacted
       file (one snapshot record) opens in near-constant time while the
       uncompacted cost grows with shard count.

    The identity assertions are always on: the failed-over merged result
    must be byte-identical (wire encoding) to an uninterrupted in-process
    run, and every compacted ledger must merge byte-identical to its
    uncompacted self. Recovery-time budgets live in
    ``benchmarks/test_bench_failover.py`` behind ``REPRO_BENCH_STRICT=1``.
    """
    import multiprocessing
    import signal
    import socket as socket_module
    import tempfile
    import threading

    from ..cluster import ClusterWorker, StandbyCoordinator
    from ..runtime import RunLedger
    from ..workload.generator import WildScanConfig
    from .plan import build_schedule, resolve_shard_count, shard_schedule
    from .scan import ScanEngine, run_shard
    from .wire import detection_to_wire

    def fingerprint(result) -> str:
        return json.dumps(
            {
                "total": result.total_transactions,
                "detections": [detection_to_wire(d) for d in result.detections],
                "rows": {
                    name: [row.n, row.tp, row.fp]
                    for name, row in sorted(result.rows.items())
                },
            },
            sort_keys=True,
        )

    def reserve_port() -> tuple[str, int]:
        probe = socket_module.socket(socket_module.AF_INET, socket_module.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        address = probe.getsockname()[:2]
        probe.close()
        return address

    config = WildScanConfig(scale=scale, seed=seed, shards=shards)
    start = time.perf_counter()
    reference_result = ScanEngine(config).run()
    uninterrupted_elapsed = time.perf_counter() - start
    reference = fingerprint(reference_result)

    # -- section 1: kill the primary mid-scan, adopt, finish ------------
    can_fork = "fork" in multiprocessing.get_all_start_methods()
    with tempfile.TemporaryDirectory(prefix="repro-failover-bench-") as tmp:
        path = Path(tmp) / "run.ledger"
        primary_address = reserve_port()
        child = None
        if can_fork:
            ctx = multiprocessing.get_context("fork")
            child = ctx.Process(
                target=_failover_primary_main,
                args=(str(path), primary_address[1], scale, seed, shards),
                daemon=True,
            )
            try:
                child.start()
            except (OSError, PermissionError):
                child = None  # sandboxed: degrade to the pre-seeded path
        real_kill = child is not None
        if not real_kill:
            # no forked primary to kill: emulate its remains — a journal
            # holding the first half of the shards (never-alive primary).
            tasks = build_schedule(scale, seed)
            count = resolve_shard_count(shards, len(tasks))
            parts = shard_schedule(tasks, count)
            seeded = RunLedger.create(path, config, count)
            for index in range(max(1, count // 2)):
                seeded.record(run_shard((config, index, count, parts[index])))
            seeded.close()

        standby = StandbyCoordinator(
            config,
            primary=primary_address,
            ledger=path,
            probe_interval=0.05,
            probe_failures=3,
            coordinator_options={"local_fallback": True},
        )
        standby.start()
        hook = (
            (lambda worker, shard, number: time.sleep(task_delay))
            if task_delay
            else None
        )
        fleet = []
        for index in range(workers):
            worker = ClusterWorker(
                [primary_address, standby.address],
                name=f"failover-{index}",
                connect_timeout=2.0,
                reconnect=True,
                reconnect_backoff=0.05,
                reconnect_max_delay=0.25,
                reconnect_tries=400,
                task_hook=hook,
            )
            box: list = []
            thread = threading.Thread(
                target=lambda w=worker, b=box: b.append(w.run()), daemon=True
            )
            thread.start()
            fleet.append((worker, thread, box))
        try:
            if real_kill:
                deadline = time.monotonic() + 300.0
                while time.monotonic() < deadline:
                    if _journaled_ledger_shards(path) >= 1:
                        break
                    if not child.is_alive():
                        break
                    time.sleep(0.01)
                kill_started = time.perf_counter()
                if child.is_alive():
                    os.kill(child.pid, signal.SIGKILL)
                child.join(timeout=10.0)
            else:
                kill_started = time.perf_counter()
            journaled_at_kill = _journaled_ledger_shards(path)
            if not standby.wait_for_primary_death(timeout=120.0):
                raise AssertionError("standby never detected the primary's death")
            detect_elapsed = time.perf_counter() - kill_started
            start = time.perf_counter()
            result = standby.adopt_and_run(
                timeout=600.0,
                autoscale=autoscale,
                max_workers=max(2, workers),
                autoscale_options={"poll_interval": 0.02} if autoscale else None,
            )
            adopted_elapsed = time.perf_counter() - start
            recovery_elapsed = time.perf_counter() - kill_started
        finally:
            for worker, _, _ in fleet:
                worker.stop()
            for _, thread, _ in fleet:
                thread.join(timeout=10.0)
            standby.shutdown()
            if child is not None and child.is_alive():
                child.terminate()
                child.join(timeout=5.0)

        if fingerprint(result) != reference:
            raise AssertionError(
                "identity violation: the failed-over scan changed the "
                "detections relative to an uninterrupted run"
            )
        stats = standby.stats
        failover_run = {
            "real_kill": real_kill,
            "workers": workers,
            "autoscale": autoscale,
            "journaled_at_kill": journaled_at_kill,
            "detect_s": round(detect_elapsed, 4),
            "adopted_run_s": round(adopted_elapsed, 4),
            "recovery_s": round(recovery_elapsed, 4),
            "resumed_shards": stats.resumed_shards,
            "assignments": stats.assignments,
            "duplicates_suppressed": stats.duplicates_suppressed,
            "local_fallback_shards": stats.local_fallback_shards,
            "worker_failovers": sum(
                box[0].failovers for _, _, box in fleet if box
            ),
            "identical": True,
        }

    # -- section 2: open()/replay cost, compacted vs uncompacted --------
    compaction_runs = []
    for requested in compact_shard_counts:
        tasks = build_schedule(scale, seed)
        count = resolve_shard_count(requested, len(tasks))
        compact_config = WildScanConfig(scale=scale, seed=seed, shards=requested)
        parts = shard_schedule(tasks, count)
        with tempfile.TemporaryDirectory(prefix="repro-compact-bench-") as tmp:
            ledger_path = Path(tmp) / "full.ledger"
            full = RunLedger.create(ledger_path, compact_config, count)
            for index in range(count):
                full.record(run_shard((compact_config, index, count, parts[index])))
            full.close()

            def open_best(repeats: int = 5) -> tuple[float, "RunLedger"]:
                best = None
                opened = None
                for _ in range(repeats):
                    if opened is not None:
                        opened.close()
                    began = time.perf_counter()
                    opened = RunLedger.open(
                        ledger_path, config=compact_config, shard_count=count
                    )
                    elapsed = time.perf_counter() - began
                    best = elapsed if best is None else min(best, elapsed)
                return best, opened

            uncompacted_open, opened = open_best()
            uncompacted_fp = fingerprint(opened.merge())
            opened.compact()  # fold the whole journal, rotate the file
            opened.close()
            compacted_open, opened = open_best()
            compacted_fp = fingerprint(opened.merge())
            opened.close()
            if compacted_fp != uncompacted_fp:
                raise AssertionError(
                    f"identity violation: compaction at {count} shards "
                    f"changed the merged result"
                )
        compaction_runs.append(
            {
                "shards": count,
                "uncompacted_records": count,
                "compacted_records": 1,
                "uncompacted_open_ms": round(uncompacted_open * 1000, 3),
                "compacted_open_ms": round(compacted_open * 1000, 3),
                "open_speedup": round(uncompacted_open / compacted_open, 2)
                if compacted_open
                else None,
                "identical": True,
            }
        )

    return {
        "benchmark": "coordinator_failover",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "uninterrupted_elapsed_s": round(uninterrupted_elapsed, 4),
        "total_transactions": reference_result.total_transactions,
        "detected": reference_result.detected_count,
        "failover_run": failover_run,
        "compaction_runs": compaction_runs,
    }


def run_service_bench(
    scale: float = 0.02,
    seed: int = 7,
    shards: int = 4,
    executors: int = 2,
    burst: int = 4,
) -> dict:
    """Bench the resident scan service against a standalone engine run.

    One service process, talked to over its TCP protocol, measures the
    latencies a multi-tenant deployment cares about:

    1. **cold submit** — empty data dir, empty warm cache: submit-to-
       result includes the world builds;
    2. **warm submit** — a different seed over the same shard layout:
       the warm-entity cache primes every shard's context snapshot, so
       the run must record warm hits and skip the world rebuilds;
    3. **burst** — ``burst`` distinct configs submitted concurrently
       from separate client connections plus one duplicate of the first
       (which must coalesce, not scan): per-run queue wait is the gap
       between submission and execution start.

    Identity is always asserted: the cold and warm runs' paged-out
    detections must match a standalone :class:`ScanEngine` run of the
    same config wire-byte for wire-byte, and a paged fetch must equal
    the unpaged one. Wall-clock budgets live in
    ``benchmarks/test_bench_service.py`` behind ``REPRO_BENCH_STRICT=1``.
    """
    import tempfile
    import threading

    from ..service import ScanService, ServiceClient, ServiceServer
    from ..workload.generator import WildScanConfig
    from .scan import ScanEngine, clear_context_snapshots
    from .wire import detection_to_wire

    if burst < 2:
        raise ValueError(f"burst must be >= 2, got {burst}")

    cold_config = WildScanConfig(scale=scale, seed=seed, shards=shards)
    warm_config = WildScanConfig(scale=scale, seed=seed + 1, shards=shards)

    def reference_wire(config) -> list[dict]:
        return [detection_to_wire(d) for d in ScanEngine(config).run().detections]

    cold_reference = reference_wire(cold_config)
    warm_reference = reference_wire(warm_config)
    # the references above warmed the process-level snapshot store; drop
    # it so the service's first run is honestly cold.
    clear_context_snapshots()

    def check_identity(client, run_id: str, reference: list[dict], label: str):
        page = client.results(run_id)
        if page["detections"] != reference:
            raise AssertionError(
                f"identity violation: the service's {label} run diverged "
                f"from the standalone engine"
            )
        paged: list[dict] = []
        offset = 0
        while True:
            chunk = client.results(run_id, offset=offset, limit=3)
            paged.extend(chunk["detections"])
            if chunk["next_offset"] is None:
                break
            offset = chunk["next_offset"]
        if paged != reference:
            raise AssertionError(
                f"identity violation: paged fetch of the {label} run "
                f"differs from the unpaged merge"
            )
        return page

    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        service = ScanService(
            tmp, executors=executors, max_queue=max(burst + 2, 8), warm_ttl=None
        )
        with service, ServiceServer(service) as server:
            with ServiceClient(server.address) as client:
                # 1. cold: includes every shard's world build.
                start = time.perf_counter()
                cold_run = client.submit(cold_config)
                cold_view = client.wait(cold_run["run_id"], timeout=600)
                check_identity(client, cold_run["run_id"], cold_reference, "cold")
                cold_elapsed = time.perf_counter() - start
                if cold_view["state"] != "completed":
                    raise AssertionError(f"cold run ended {cold_view['state']}")

                # 2. warm: same shard layout, different seed — the warm
                # cache must hand back every context snapshot.
                start = time.perf_counter()
                warm_run = client.submit(warm_config)
                warm_view = client.wait(warm_run["run_id"], timeout=600)
                check_identity(client, warm_run["run_id"], warm_reference, "warm")
                warm_elapsed = time.perf_counter() - start
                if warm_view["warm_hits"] < 1:
                    raise AssertionError(
                        "warm run recorded no snapshot-cache hits — the "
                        "warm-entity tier is not priming the engine store"
                    )

            # 3. burst: distinct configs from concurrent connections,
            # plus one duplicate that must coalesce instead of scanning.
            burst_configs = [
                WildScanConfig(scale=scale, seed=seed + 10 + i, shards=shards)
                for i in range(burst)
            ]
            burst_views: list[dict | None] = [None] * burst
            duplicate: dict = {}

            def submit_one(index: int) -> None:
                with ServiceClient(server.address) as worker_client:
                    run = worker_client.submit(burst_configs[index])
                    if index == 0:
                        duplicate.update(worker_client.submit(burst_configs[0]))
                    burst_views[index] = worker_client.wait(
                        run["run_id"], timeout=600
                    )

            threads = [
                threading.Thread(target=submit_one, args=(i,)) for i in range(burst)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            burst_elapsed = time.perf_counter() - start

            if not duplicate.get("coalesced"):
                raise AssertionError(
                    "duplicate burst submission did not coalesce onto the "
                    "in-flight run"
                )
            for view in burst_views:
                if view is None or view["state"] != "completed":
                    raise AssertionError("burst run did not complete")
            queue_waits = [
                round(view["started_at"] - view["submitted_at"], 4)
                for view in burst_views
            ]
            stats = service.stats()

    speedup = round(cold_elapsed / warm_elapsed, 2) if warm_elapsed else None
    return {
        "benchmark": "scan_service",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "executors": executors,
        "cpu_count": effective_cpu_count(),
        "os_cpu_count": os.cpu_count(),
        "cold_run": {
            "submit_to_result_s": round(cold_elapsed, 4),
            "warm_hits": cold_view["warm_hits"],
            "warm_misses": cold_view["warm_misses"],
            "detected": len(cold_reference),
        },
        "warm_run": {
            "submit_to_result_s": round(warm_elapsed, 4),
            "warm_hits": warm_view["warm_hits"],
            "warm_misses": warm_view["warm_misses"],
            "detected": len(warm_reference),
        },
        "burst": {
            "runs": burst,
            "elapsed_s": round(burst_elapsed, 4),
            "queue_wait_s": queue_waits,
            "max_queue_wait_s": max(queue_waits),
            "coalesced_duplicates": stats["counters"]["coalesced"],
        },
        "speedup_warm_vs_cold": speedup,
    }


def run_robustness_bench(
    seed: int = 7,
    instances: int = 2,
    benign: int = 24,
) -> dict:
    """The adversarial-robustness benchmark: mutation sweep + contract checks.

    Runs the per-family × per-mutation sweep of
    :mod:`repro.experiments.robustness` twice and asserts, always:

    1. **determinism** — both sweeps score identically cell for cell;
    2. **baseline recall** — every family's unmutated attack is detected
       by its own pattern on every instance (recall 1.0);
    3. **documented evasions** — every ``expect_evades`` cell of the
       mutation matrix has recall 0.0: the mutation provably pushes the
       attack below the pattern's thresholds;
    4. **controls** — ``scale_amounts``, ``add_round`` and
       ``provider_swap`` keep recall 1.0 for every family (thresholds
       are minima over counts/ratios, and patterns match trades, not
       providers);
    5. **execution** — no cell reverted: the fee subsidy guarantees a
       mutated attack *executes and evades* rather than failing.

    Wall-clock enforcement (the whole double sweep under the budget)
    only applies under ``REPRO_BENCH_STRICT=1``, like every other bench.
    """
    from ..experiments.robustness import run as run_sweep
    from ..workload.mutate import MUTATIONS

    def sweep():
        start = time.perf_counter()
        result = run_sweep(seed=seed, instances=instances, benign=benign)
        return result, time.perf_counter() - start

    result, elapsed = sweep()
    repeat, repeat_elapsed = sweep()

    def matrix(res) -> dict:
        return {
            f"{cell.family}/{cell.mutation}": {
                "instances": cell.instances,
                "hits": cell.hits,
                "recall": cell.recall,
                "reverted": cell.reverted,
                "patterns": dict(sorted(cell.patterns.items())),
            }
            for cell in res.cells
        }

    cells = matrix(result)
    if matrix(repeat) != cells:
        raise AssertionError(
            "determinism violation: two robustness sweeps with the same "
            "seed scored differently"
        )
    families = result.families()
    for family in families:
        for control in ("baseline", "scale_amounts", "add_round", "provider_swap"):
            cell = result.cell(family, control)
            if cell.recall != 1.0 or cell.reverted:
                raise AssertionError(
                    f"{family}/{control}: expected recall 1.0, got "
                    f"{cell.recall:.2f} ({cell.reverted} reverted) — "
                    f"patterns seen: {cell.patterns}"
                )
    for mutation in MUTATIONS:
        for family in mutation.expect_evades:
            cell = result.cell(family, mutation.key)
            if cell.recall != 0.0:
                raise AssertionError(
                    f"{family}/{mutation.key}: documented evasion did not "
                    f"evade — recall {cell.recall:.2f}"
                )
    reverted = {key: cell["reverted"] for key, cell in cells.items() if cell["reverted"]}
    if reverted:
        raise AssertionError(f"cells reverted despite fee subsidy: {reverted}")

    return {
        "benchmark": "robustness",
        "seed": seed,
        "instances_per_cell": instances,
        "benign_per_family": benign,
        "families": families,
        "mutations": [m.key for m in MUTATIONS],
        "cells": cells,
        "precision": {f: result.precision(f) for f in families},
        "benign_total": result.benign_total,
        "benign_flagged": dict(result.benign_flagged),
        "evading_cells": sorted(
            key for key, cell in cells.items()
            if cell["recall"] == 0.0 and not key.endswith("/baseline")
        ),
        "elapsed_s": round(elapsed, 4),
        "repeat_elapsed_s": round(repeat_elapsed, 4),
        "machine": {"cpus": os.cpu_count()},
    }


def write_artifact(report: dict, path: str | Path = DEFAULT_ARTIFACT) -> Path:
    """Write the benchmark report as a stable, diff-friendly JSON file."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
