"""Per-stage profiling for the scan hot path.

A :class:`StageProfiler` is a pair of dictionaries — nanosecond timers
and event counters — cheap enough to thread through the per-transaction
pipeline (one ``perf_counter_ns`` pair per instrumented stage, nothing
when profiling is off). Every shard carries its own profiler; shard
payloads merge into one run-level profile with :func:`merge_profiles`,
and :func:`write_profile` dumps the merged payload as a JSON artifact
alongside the BENCH files so a performance claim ("parallel loses at
small scales because world generation dominates") is recorded, not
guessed.

The payload is plain JSON (``{"timers_ns": {...}, "counters": {...}}``)
so it survives process pools and the cluster wire unchanged. Profiles
are *observability* data: they are deliberately excluded from the shard
result wire schema and the run ledger, so enabling ``--profile`` can
never change a result byte or invalidate a resumable journal.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "StageProfiler",
    "merge_profiles",
    "render_profile",
    "write_profile",
    "DEFAULT_PROFILE_ARTIFACT",
]

#: canonical profile artifact location (repo root, next to BENCH files).
DEFAULT_PROFILE_ARTIFACT = "PROFILE_wildscan.json"


class StageProfiler:
    """Nanosecond stage timers plus event counters for one shard."""

    __slots__ = ("timers_ns", "counters")

    def __init__(self) -> None:
        self.timers_ns: dict[str, int] = {}
        self.counters: dict[str, int] = {}

    def add(self, stage: str, elapsed_ns: int) -> None:
        """Accumulate wall time (ns) under ``stage``."""
        timers = self.timers_ns
        timers[stage] = timers.get(stage, 0) + elapsed_ns

    def count(self, name: str, n: int = 1) -> None:
        """Bump the ``name`` event counter by ``n``."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def to_dict(self) -> dict:
        """JSON-safe payload: ``{"timers_ns": ..., "counters": ...}``."""
        return {"timers_ns": dict(self.timers_ns), "counters": dict(self.counters)}


def merge_profiles(payloads) -> dict:
    """Sum :meth:`StageProfiler.to_dict` payloads into one profile.

    ``None`` entries (shards that ran unprofiled, e.g. resumed from a
    ledger journal) are skipped; the merged payload records how many
    shards actually contributed under ``counters["shards_profiled"]`` so
    a partial profile is visibly partial.
    """
    timers: dict[str, int] = {}
    counters: dict[str, int] = {}
    contributed = 0
    for payload in payloads:
        if not payload:
            continue
        contributed += 1
        for stage, elapsed in payload.get("timers_ns", {}).items():
            timers[stage] = timers.get(stage, 0) + elapsed
        for name, value in payload.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
    counters["shards_profiled"] = contributed
    return {"timers_ns": timers, "counters": counters}


def render_profile(payload: dict) -> str:
    """Human-readable stage table, slowest stage first."""
    timers = payload.get("timers_ns", {})
    counters = payload.get("counters", {})
    total = sum(timers.values())
    lines = ["stage profile (wall time per stage, summed across shards):"]
    for stage, elapsed in sorted(timers.items(), key=lambda item: -item[1]):
        share = elapsed / total if total else 0.0
        lines.append(f"  {stage:<18} {elapsed / 1e6:>10.1f} ms  {share:>5.1%}")
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<18} {value:>10}")
    return "\n".join(lines)


def write_profile(payload: dict, path: str | Path = DEFAULT_PROFILE_ARTIFACT) -> Path:
    """Write a merged profile payload as a diff-friendly JSON artifact.

    Millisecond views are derived at write time so the artifact is
    readable without arithmetic, while the payload keeps exact ns sums.
    """
    path = Path(path)
    timers = payload.get("timers_ns", {})
    artifact = {
        "artifact": "stage_profile",
        "timers_ns": dict(timers),
        "timers_ms": {k: round(v / 1e6, 3) for k, v in timers.items()},
        "counters": dict(payload.get("counters", {})),
    }
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path
