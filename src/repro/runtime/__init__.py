"""Durable execution runtime shared by every scan backend.

The batch engine (:class:`~repro.engine.scan.ScanEngine`), the streaming
engine (:class:`~repro.engine.stream.StreamEngine`) and the cluster
coordinator (:class:`~repro.cluster.coordinator.Coordinator`) all
execute the same deterministic shard partition; this package gives them
one journaled execution layer underneath. A :class:`RunLedger` records
every finished shard append-only on disk, so a scan interrupted at any
point — a killed batch process, a SIGKILL'd coordinator host — resumes
from the journal and re-runs only the shards that never landed, merging
byte-identically to an uninterrupted run::

    from repro.runtime import RunLedger
    from repro.engine.scan import ScanEngine
    from repro.workload.generator import WildScanConfig

    config = WildScanConfig(scale=0.01, shards=8)
    result = ScanEngine(config, ledger="scan.ledger").run()
    # ... kill + restart: the same call resumes, skipping finished shards
"""

from .ledger import LEDGER_VERSION, LedgerError, RunLedger, ensure_ledger
from .profile import (
    DEFAULT_PROFILE_ARTIFACT,
    StageProfiler,
    merge_profiles,
    render_profile,
    write_profile,
)

__all__ = [
    "LEDGER_VERSION",
    "LedgerError",
    "RunLedger",
    "ensure_ledger",
    "DEFAULT_PROFILE_ARTIFACT",
    "StageProfiler",
    "merge_profiles",
    "render_profile",
    "write_profile",
]
