"""The run ledger: an append-only journal of shard outcomes.

One ledger file describes one scan. The first line is a versioned header
binding the file to a scan identity — ``(seed, scale, shard_count,
config_digest)`` plus the full wire-encoded config — and every later
line journals one finished shard as its lossless wire payload
(:mod:`repro.engine.wire`)::

    {"kind": "header", "ledger_version": 2, "wire_version": 1,
     "seed": 7, "scale": 0.01, "shard_count": 8,
     "config_digest": "ab12...", "config": {...}}
    {"kind": "shard", "shard": 3, "payload": {...}}
    {"kind": "shard", "shard": 0, "payload": {...}}

Long runs journal one record per shard, so replay cost at open grows
with shard count. :meth:`RunLedger.compact` folds the contiguous
journaled *prefix* of shards into a single ``{"kind": "snapshot"}``
record — the prefix's merged totals, detections and pattern rows, summed
exactly as :func:`~repro.engine.scan.merge_shard_results` would sum them
— and rotates the file, so open/replay cost is O(tail), not O(shards)::

    {"kind": "header", ...}
    {"kind": "snapshot", "shards": 5, "generation": 1, "merged": {...}}
    {"kind": "shard", "shard": 6, "payload": {...}}

Because the merge is a left fold in shard order, merging the snapshot
first and the tail shards after is byte-identical to merging every shard
individually: compaction never changes a result bit.

Durability guarantees — what survives a kill at each point:

- **mid-append** — records are flushed and fsync'd one by one; a kill
  mid-append leaves at worst one torn trailing line, which
  :meth:`RunLedger.open` tolerates and truncates away (records are split
  on ``b"\\n"`` alone, so a torn tail carrying a stray carriage return —
  or a ledger copied through a CRLF filesystem — still truncates on the
  true record boundary). A torn partial record followed by trailing
  blank lines classifies the same way: torn tail, never interior
  corruption.
- **right after create** — :meth:`create` fsyncs the file *and its
  parent directory*, closing the classic new-file durability gap where
  a crash loses the directory entry while the run believes it is
  journaled.
- **mid-compaction** — :meth:`compact` writes the compacted journal to
  ``<path>.<generation>``, fsyncs it, atomically renames it over
  ``path`` and fsyncs the directory. A kill between write and rename
  leaves the old file; between rename and directory fsync, the old or
  the new file — both parse, never neither. Stale ``<path>.N`` leftovers
  are cleared on the next open.
- **anything else** — a corrupt interior line, a header from an
  unsupported ledger version, a payload with the wrong wire schema
  version, two divergent records for the same shard, or a config whose
  digest does not match — raises :class:`LedgerError` instead of
  producing a wrong merge.

The merge lives behind the ledger: :meth:`RunLedger.merge` decodes the
snapshot (if any) plus every journaled payload and feeds them to
:func:`~repro.engine.scan.merge_shard_results` in shard order, so a
resumed run's result is byte-identical to an uninterrupted one — the
codec round-trip is lossless and the merge never sees *where* a shard
ran, *when* it was journaled, or whether its prefix was compacted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..engine.scan import ShardResult, merge_shard_results
from ..engine.wire import (
    WIRE_VERSION,
    config_digest,
    config_from_wire,
    config_to_wire,
    detection_from_wire,
    shard_result_from_wire,
    shard_result_to_wire,
)

__all__ = ["LEDGER_VERSION", "LedgerError", "RunLedger", "ensure_ledger"]

#: ledger file format version; the header pins it and readers reject
#: anything newer (the journal outlives the process that wrote it).
#: v2: snapshot-compaction records (``{"kind": "snapshot"}``) + rotation.
LEDGER_VERSION = 2

#: versions this build can still read: v1 files are a strict subset of
#: v2 (no snapshot records ever appear in them).
_COMPAT_LEDGER_VERSIONS = frozenset({1, LEDGER_VERSION})


class LedgerError(ValueError):
    """The ledger cannot be used: version/config mismatch or corruption."""


class RunLedger:
    """Durable journal of one scan's shard outcomes.

    Construct through :meth:`create`, :meth:`open` or
    :meth:`resume_or_create`; engines normalize path-or-ledger arguments
    through :func:`ensure_ledger`. Thread-safe appends are the caller's
    responsibility (the coordinator records under its lock; the batch
    and stream engines record from a single thread). ``compact_every``
    auto-compacts after that many freshly journaled shards.
    """

    def __init__(
        self,
        path: Path,
        config,
        shard_count: int,
        *,
        payloads: dict[int, dict] | None = None,
        snapshot: dict | None = None,
        header_line: str | None = None,
        fresh: bool,
        compact_every: int | None = None,
    ) -> None:
        if compact_every is not None and compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.path = path
        self.config = config
        self.shard_count = shard_count
        self.config_digest = config_digest(config)
        #: shard index -> wire payload, as journaled (compacted prefix
        #: shards live in :attr:`_snapshot` instead, never here).
        self._payloads: dict[int, dict] = payloads or {}
        #: folded prefix: ``{"shards": k, "generation": g, "merged": {...}}``
        #: meaning shards ``0..k-1`` are compacted into one merged payload.
        self._snapshot: dict | None = snapshot
        self._header_line = header_line or json.dumps(
            self._header_dict(config, shard_count), sort_keys=True
        )
        #: shards already in the file when it was opened (what a resume skips).
        self.resumed_count = 0 if fresh else self.completed_count
        #: shards appended by this process.
        self.recorded_count = 0
        #: idempotent re-records that were already journaled.
        self.duplicates_ignored = 0
        #: successful :meth:`compact` rotations performed by this process.
        self.compactions = 0
        self.compact_every = compact_every
        self._since_compaction = 0
        self._handle = None

    # -- constructors ----------------------------------------------------

    @classmethod
    def create(
        cls, path, config, shard_count: int, *, compact_every: int | None = None
    ) -> "RunLedger":
        """Start a fresh ledger at ``path`` (fails if the file exists)."""
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        path = Path(path)
        header_line = json.dumps(cls._header_dict(config, shard_count), sort_keys=True)
        with open(path, "x", encoding="utf-8") as handle:
            handle.write(header_line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        # the new-file durability gap: without fsyncing the directory a
        # crash here can lose the whole file while the run believes its
        # shards are journaled.
        cls._fsync_dir(path.parent)
        return cls(
            path, config, shard_count,
            header_line=header_line, fresh=True, compact_every=compact_every,
        )

    @staticmethod
    def _header_dict(config, shard_count: int) -> dict:
        return {
            "kind": "header",
            "ledger_version": LEDGER_VERSION,
            "wire_version": WIRE_VERSION,
            "seed": config.seed,
            "scale": config.scale,
            "shard_count": shard_count,
            "config_digest": config_digest(config),
            "config": config_to_wire(config),
        }

    @classmethod
    def open(
        cls,
        path,
        config=None,
        shard_count: int | None = None,
        *,
        compact_every: int | None = None,
    ) -> "RunLedger":
        """Load an existing ledger, verifying it belongs to this scan.

        ``config``/``shard_count``, when given, must match the header —
        a ``config_digest`` or shard-count mismatch raises
        :class:`LedgerError` (resuming someone else's journal would merge
        shards from a different scan). A torn trailing line (the mark of
        a kill mid-append) is tolerated *and truncated away*, so records
        appended by the resumed run land on a clean line boundary instead
        of turning the tear into interior corruption at the next open.
        """
        path = Path(path)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise LedgerError(f"no ledger at {path}") from None
        if not data:
            raise LedgerError(f"{path}: empty file, not a ledger")
        # Split records on b"\n" alone — str.splitlines() also splits on
        # \r, \x1c,   and friends, which both misclassifies a torn
        # tail bearing a stray carriage return and miscounts the intact
        # byte length when truncating it.
        lines = data.split(b"\n")
        offsets: list[int] = []
        position = 0
        for line in lines:
            offsets.append(position)
            position += len(line) + 1
        header_line = cls._decode_record_line(path, lines[0], 1)
        if header_line is None:
            raise LedgerError(f"{path}: undecodable header line")
        header = cls._parse_header(path, header_line)
        ledger_config = config_from_wire(header["config"])
        if config is not None and config_digest(config) != header["config_digest"]:
            raise LedgerError(
                f"{path}: config digest mismatch — the ledger was written for "
                f"(seed={header['seed']}, scale={header['scale']}, "
                f"shard_count={header['shard_count']}, "
                f"config_digest={header['config_digest']}), the caller is "
                f"resuming (seed={config.seed}, scale={config.scale}, "
                f"shard_count={shard_count if shard_count is not None else 'auto'}, "
                f"config_digest={config_digest(config)}); refusing to resume a "
                f"different scan"
            )
        if shard_count is not None and shard_count != header["shard_count"]:
            raise LedgerError(
                f"{path}: shard count mismatch — the ledger was written for "
                f"(seed={header['seed']}, scale={header['scale']}, "
                f"shard_count={header['shard_count']}, "
                f"config_digest={header['config_digest']}), the caller "
                f"expects shard_count={shard_count}"
            )
        payloads, snapshot, torn_at = cls._parse_records(
            path, lines, offsets, header["shard_count"]
        )
        if torn_at is not None:
            cls._truncate_at(path, torn_at)
        cls._clear_stale_rotations(path)
        return cls(
            path, ledger_config, header["shard_count"],
            payloads=payloads, snapshot=snapshot, header_line=header_line,
            fresh=False, compact_every=compact_every,
        )

    @classmethod
    def resume_or_create(
        cls, path, config, shard_count: int, *, compact_every: int | None = None
    ) -> "RunLedger":
        """Open ``path`` when it exists (verified), else start it fresh."""
        if Path(path).exists():
            return cls.open(
                path, config=config, shard_count=shard_count,
                compact_every=compact_every,
            )
        return cls.create(path, config, shard_count, compact_every=compact_every)

    @classmethod
    def for_config(cls, path, config, *, compact_every: int | None = None) -> "RunLedger":
        """Resume-or-create with the shard count resolved from ``config``
        exactly as the engines resolve it (CLI/example convenience)."""
        from ..engine.plan import build_full_schedule

        _, shard_count = build_full_schedule(config)
        return cls.resume_or_create(
            path, config, shard_count,
            compact_every=compact_every,
        )

    # -- header / record parsing ----------------------------------------

    @staticmethod
    def _decode_record_line(path: Path, raw: bytes, number: int) -> str | None:
        """Decode one record line to text; ``None`` marks undecodable bytes."""
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError:
            return None

    @staticmethod
    def _parse_header(path: Path, line: str) -> dict:
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise LedgerError(f"{path}: undecodable header line: {exc}") from None
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise LedgerError(f"{path}: first line is not a ledger header")
        version = header.get("ledger_version")
        if version not in _COMPAT_LEDGER_VERSIONS:
            raise LedgerError(
                f"{path}: ledger format version mismatch — file says "
                f"{version!r}, this build speaks v{LEDGER_VERSION}"
            )
        if header.get("wire_version") != WIRE_VERSION:
            raise LedgerError(
                f"{path}: wire schema version mismatch — file says "
                f"{header.get('wire_version')!r}, this build speaks "
                f"v{WIRE_VERSION}"
            )
        for field in ("seed", "scale", "shard_count", "config_digest", "config"):
            if field not in header:
                raise LedgerError(f"{path}: header is missing {field!r}")
        return header

    @classmethod
    def _parse_records(
        cls, path: Path, lines: list[bytes], offsets: list[int], shard_count: int
    ) -> tuple[dict, dict | None, int | None]:
        """Parse record lines; returns ``(payloads, snapshot, torn_at)``.

        ``torn_at`` is the byte offset of a torn trailing record (to
        truncate), ``None`` when the tail is clean. A decode failure is
        torn when nothing but blank lines follows it — the final segment
        of a file killed mid-append, *or* a partial record whose trailing
        newline came from an earlier flush.
        """
        payloads: dict[int, dict] = {}
        snapshot: dict | None = None
        torn_at: int | None = None
        for number in range(1, len(lines)):
            raw = lines[number]
            if not raw.strip():
                continue
            text = cls._decode_record_line(path, raw, number + 1)
            record = None
            if text is not None:
                try:
                    record = json.loads(text)
                except json.JSONDecodeError:
                    record = None
            if record is None:
                if all(not rest.strip() for rest in lines[number + 1:]):
                    torn_at = offsets[number]  # torn tail: the kill's signature
                    break
                raise LedgerError(
                    f"{path}: corrupt interior record at line {number + 1}"
                )
            if not isinstance(record, dict):
                raise LedgerError(
                    f"{path}: line {number + 1} is not a ledger record"
                )
            kind = record.get("kind")
            if kind == "snapshot":
                if snapshot is not None or payloads:
                    raise LedgerError(
                        f"{path}: line {number + 1}: a snapshot record must be "
                        f"the first record (compaction writes exactly one)"
                    )
                snapshot = cls._validate_snapshot(path, record, number + 1, shard_count)
                continue
            if kind != "shard":
                raise LedgerError(
                    f"{path}: line {number + 1} is not a shard record"
                )
            shard = record.get("shard")
            payload = record.get("payload")
            if not isinstance(shard, int) or not 0 <= shard < shard_count:
                raise LedgerError(
                    f"{path}: line {number + 1} names shard {shard!r}, "
                    f"outside 0..{shard_count - 1}"
                )
            if not isinstance(payload, dict) or payload.get("v") != WIRE_VERSION:
                raise LedgerError(
                    f"{path}: shard {shard} payload has wire version "
                    f"{payload.get('v') if isinstance(payload, dict) else None!r}, "
                    f"this build speaks v{WIRE_VERSION}"
                )
            if snapshot is not None and shard < snapshot["shards"]:
                continue  # already folded into the snapshot: first wins
            if shard in payloads:
                if payloads[shard] != payload:
                    raise LedgerError(
                        f"{path}: divergent duplicate records for shard {shard}"
                    )
                continue  # identical duplicate: first wins
            payloads[shard] = payload
        return payloads, snapshot, torn_at

    @staticmethod
    def _validate_snapshot(
        path: Path, record: dict, line_number: int, shard_count: int
    ) -> dict:
        shards = record.get("shards")
        generation = record.get("generation")
        merged = record.get("merged")
        if not isinstance(shards, int) or not 1 <= shards <= shard_count:
            raise LedgerError(
                f"{path}: line {line_number}: snapshot covers {shards!r} "
                f"shard(s), outside 1..{shard_count}"
            )
        if not isinstance(generation, int) or generation < 1:
            raise LedgerError(
                f"{path}: line {line_number}: snapshot generation "
                f"{generation!r} is not a positive integer"
            )
        if (
            not isinstance(merged, dict)
            or merged.get("v") != WIRE_VERSION
            or not all(
                field in merged
                for field in ("total_transactions", "detections", "row_counts")
            )
        ):
            raise LedgerError(
                f"{path}: line {line_number}: snapshot merged payload is "
                f"malformed or has the wrong wire version (this build speaks "
                f"v{WIRE_VERSION})"
            )
        return {"shards": shards, "generation": generation, "merged": merged}

    @staticmethod
    def _truncate_at(path: Path, offset: int) -> None:
        """Cut a torn tail at its byte offset so appends resume on a
        clean line boundary."""
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """fsync a directory entry (new file / rename durability)."""
        flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
        try:
            fd = os.open(directory, flags)
        except OSError:
            return  # platforms without directory fds (e.g. Windows)
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    @staticmethod
    def _clear_stale_rotations(path: Path) -> None:
        """Remove ``<path>.N`` leftovers from a compaction that crashed
        between write and rename (the rotation never took effect)."""
        for sibling in path.parent.glob(path.name + ".*"):
            if sibling.suffix[1:].isdigit():
                try:
                    sibling.unlink()
                except OSError:
                    pass

    # -- journaling ------------------------------------------------------

    def record(self, result: ShardResult) -> bool:
        """Journal one finished shard; False if it was already journaled."""
        return self.record_payload(
            result.shard_index, shard_result_to_wire(result)
        )

    def record_payload(self, shard: int, payload: dict) -> bool:
        """Journal one shard's wire payload durably (idempotent).

        A shard already journaled with the same payload — or folded into
        the compacted snapshot prefix, where the individual payload is no
        longer held for comparison — is skipped (``False``; counted in
        ``duplicates_ignored``): the late-result path after a resume. A
        *different* payload for a still-held shard raises
        :class:`LedgerError`: the determinism contract says that cannot
        happen, so it marks corruption, not a race.
        """
        if not 0 <= shard < self.shard_count:
            raise LedgerError(
                f"shard {shard} outside 0..{self.shard_count - 1}"
            )
        if not isinstance(payload, dict) or payload.get("v") != WIRE_VERSION:
            raise LedgerError(
                f"shard {shard}: refusing to journal a payload with wire "
                f"version {payload.get('v') if isinstance(payload, dict) else None!r}"
            )
        if self._snapshot is not None and shard < self._snapshot["shards"]:
            self.duplicates_ignored += 1
            return False
        existing = self._payloads.get(shard)
        if existing is not None:
            if existing != payload:
                raise LedgerError(
                    f"shard {shard}: divergent result for an already-journaled "
                    f"shard — same scan identity must produce identical shards"
                )
            self.duplicates_ignored += 1
            return False
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(
            json.dumps({"kind": "shard", "shard": shard, "payload": payload})
            + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._payloads[shard] = payload
        self.recorded_count += 1
        self._since_compaction += 1
        if (
            self.compact_every is not None
            and self._since_compaction >= self.compact_every
        ):
            self.compact()
        return True

    # -- compaction ------------------------------------------------------

    @property
    def snapshot_shards(self) -> int:
        """Shards folded into the snapshot prefix (0 when uncompacted)."""
        return 0 if self._snapshot is None else self._snapshot["shards"]

    @property
    def generation(self) -> int:
        """Compaction rotations this file has been through."""
        return 0 if self._snapshot is None else self._snapshot["generation"]

    def compact(self) -> bool:
        """Fold the contiguous journaled prefix into one snapshot record.

        The rotation is crash-safe: the compacted journal is written to
        ``<path>.<generation>``, fsync'd, atomically renamed over
        ``path``, and the directory entry fsync'd. A kill between write
        and rename leaves the old file at ``path``; between rename and
        directory fsync, the old or the new file — both parse, never
        neither. Returns ``False`` when the contiguous prefix cannot be
        extended (nothing new to fold).
        """
        base = self.snapshot_shards
        extent = base
        while extent < self.shard_count and extent in self._payloads:
            extent += 1
        if extent == base:
            return False
        merged = self._fold(
            None if self._snapshot is None else self._snapshot["merged"],
            [self._payloads[shard] for shard in range(base, extent)],
        )
        snapshot = {
            "shards": extent,
            "generation": self.generation + 1,
            "merged": merged,
        }
        tail = {
            shard: payload
            for shard, payload in self._payloads.items()
            if shard >= extent
        }
        # the append handle points at the soon-to-be-replaced inode;
        # close it so the next append reopens the rotated file.
        self.close()
        rotated = self.path.with_name(f"{self.path.name}.{snapshot['generation']}")
        with open(rotated, "w", encoding="utf-8") as handle:
            handle.write(self._header_line + "\n")
            handle.write(json.dumps({"kind": "snapshot", **snapshot}) + "\n")
            for shard in sorted(tail):
                handle.write(
                    json.dumps(
                        {"kind": "shard", "shard": shard, "payload": tail[shard]}
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(rotated, self.path)
        self._fsync_dir(self.path.parent)
        self._snapshot = snapshot
        self._payloads = tail
        self.compactions += 1
        self._since_compaction = 0
        return True

    @staticmethod
    def _fold(base: dict | None, payloads: list[dict]) -> dict:
        """Sum wire payloads in shard order, exactly as the merge would."""
        merged = {
            "v": WIRE_VERSION,
            "total_transactions": 0,
            "detections": [],
            "row_counts": {},
        }
        if base is not None:
            merged["total_transactions"] = base["total_transactions"]
            merged["detections"] = list(base["detections"])
            merged["row_counts"] = {
                name: list(counts) for name, counts in base["row_counts"].items()
            }
        for payload in payloads:
            merged["total_transactions"] += payload["total_transactions"]
            merged["detections"].extend(payload["detections"])
            for name, counts in payload["row_counts"].items():
                row = merged["row_counts"].setdefault(name, [0, 0, 0])
                row[0] += counts[0]
                row[1] += counts[1]
                row[2] += counts[2]
        return merged

    def _snapshot_result(self) -> ShardResult:
        """The folded prefix as one pseudo shard result.

        ``shard_index=-1`` sorts before every real shard, so
        :func:`~repro.engine.scan.merge_shard_results` folds the prefix
        first — the exact order the individual shards would have merged.
        """
        merged = self._snapshot["merged"]
        return ShardResult(
            shard_index=-1,
            total_transactions=merged["total_transactions"],
            detections=[detection_from_wire(d) for d in merged["detections"]],
            row_counts={
                name: list(counts) for name, counts in merged["row_counts"].items()
            },
        )

    # -- resume / merge --------------------------------------------------

    @property
    def completed_payloads(self) -> dict[int, dict]:
        """Individually journaled shard payloads (shard index -> wire
        dict), read-only use. Shards folded into the snapshot prefix are
        *not* here — use :meth:`completed_shards` for the done-set."""
        return self._payloads

    def completed_shards(self) -> frozenset[int]:
        """Every journaled shard index: snapshot prefix plus tail records."""
        done = set(self._payloads)
        done.update(range(self.snapshot_shards))
        return frozenset(done)

    @property
    def completed_count(self) -> int:
        # prefix and tail are disjoint by construction (record_payload
        # never re-adds a compacted shard; open drops prefix duplicates).
        return self.snapshot_shards + len(self._payloads)

    def completed_results(self) -> dict[int, ShardResult]:
        """Individually journaled shards decoded back to
        :class:`ShardResult` (excludes the compacted snapshot prefix)."""
        return {
            shard: shard_result_from_wire(payload)
            for shard, payload in self._payloads.items()
        }

    def remaining(self) -> list[int]:
        """Shard indices still missing from the journal, ascending."""
        done = self.completed_shards()
        return [
            shard for shard in range(self.shard_count)
            if shard not in done
        ]

    @property
    def is_complete(self) -> bool:
        return self.completed_count == self.shard_count

    def merge(self):
        """Decode the snapshot (if any) plus every journaled shard and
        merge, in shard order.

        This is the single merge path for ledger-backed runs: batch,
        stream and cluster all journal first and merge from the journal,
        which is what makes an interrupted-and-resumed run — compacted or
        not — byte-identical to an uninterrupted one.
        """
        missing = self.remaining()
        if missing:
            raise LedgerError(
                f"cannot merge an incomplete ledger: shard(s) {missing} "
                f"not journaled"
            )
        outcomes = []
        if self._snapshot is not None:
            outcomes.append(self._snapshot_result())
        outcomes.extend(
            shard_result_from_wire(self._payloads[shard])
            for shard in sorted(self._payloads)
        )
        return merge_shard_results(self.config, outcomes)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def ensure_ledger(
    ledger, config, shard_count: int, *, compact_every: int | None = None
) -> RunLedger | None:
    """Normalize an engine's ``ledger`` argument.

    ``None`` passes through; a path resumes-or-creates; an existing
    :class:`RunLedger` is verified against this scan's ``config_digest``
    and shard count (mismatch raises :class:`LedgerError`) and keeps its
    own ``compact_every`` setting.
    """
    if ledger is None:
        return None
    if isinstance(ledger, RunLedger):
        if ledger.config_digest != config_digest(config):
            raise LedgerError(
                f"{ledger.path}: ledger was opened for a different config "
                f"(digest mismatch) — the ledger holds "
                f"(seed={ledger.config.seed}, scale={ledger.config.scale}, "
                f"shard_count={ledger.shard_count}, "
                f"config_digest={ledger.config_digest}), this run is "
                f"(seed={config.seed}, scale={config.scale}, "
                f"shard_count={shard_count}, "
                f"config_digest={config_digest(config)})"
            )
        if ledger.shard_count != shard_count:
            raise LedgerError(
                f"{ledger.path}: ledger has shard_count={ledger.shard_count}, "
                f"this run resolves {shard_count} "
                f"(both at seed={config.seed}, scale={config.scale}, "
                f"config_digest={config_digest(config)})"
            )
        return ledger
    return RunLedger.resume_or_create(
        ledger, config, shard_count, compact_every=compact_every
    )
