"""The run ledger: an append-only journal of shard outcomes.

One ledger file describes one scan. The first line is a versioned header
binding the file to a scan identity — ``(seed, scale, shard_count,
config_digest)`` plus the full wire-encoded config — and every later
line journals one finished shard as its lossless wire payload
(:mod:`repro.engine.wire`)::

    {"kind": "header", "ledger_version": 1, "wire_version": 1,
     "seed": 7, "scale": 0.01, "shard_count": 8,
     "config_digest": "ab12...", "config": {...}}
    {"kind": "shard", "shard": 3, "payload": {...}}
    {"kind": "shard", "shard": 0, "payload": {...}}

Records are flushed and fsync'd one by one, so the file is exactly as
durable as the shards it claims: a process killed mid-append leaves at
worst one torn trailing line, which :meth:`RunLedger.open` tolerates
(everything before it is intact). Any *other* malformation — a corrupt
interior line, a header from a different ledger version, a payload with
the wrong wire schema version, two divergent records for the same shard,
or a config whose digest does not match — raises :class:`LedgerError`
instead of producing a wrong merge.

The merge lives behind the ledger: :meth:`RunLedger.merge` decodes every
journaled payload and feeds them to
:func:`~repro.engine.scan.merge_shard_results` in shard order, so a
resumed run's result is byte-identical to an uninterrupted one — the
codec round-trip is lossless and the merge never sees *where* a shard
ran or *when* it was journaled.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..engine.scan import ShardResult, merge_shard_results
from ..engine.wire import (
    WIRE_VERSION,
    config_digest,
    config_from_wire,
    config_to_wire,
    shard_result_from_wire,
    shard_result_to_wire,
)

__all__ = ["LEDGER_VERSION", "LedgerError", "RunLedger", "ensure_ledger"]

#: ledger file format version; the header pins it and readers reject
#: anything else (the journal outlives the process that wrote it).
LEDGER_VERSION = 1


class LedgerError(ValueError):
    """The ledger cannot be used: version/config mismatch or corruption."""


class RunLedger:
    """Durable journal of one scan's shard outcomes.

    Construct through :meth:`create`, :meth:`open` or
    :meth:`resume_or_create`; engines normalize path-or-ledger arguments
    through :func:`ensure_ledger`. Thread-safe appends are the caller's
    responsibility (the coordinator records under its lock; the batch
    and stream engines record from a single thread).
    """

    def __init__(
        self,
        path: Path,
        config,
        shard_count: int,
        *,
        payloads: dict[int, dict] | None = None,
        fresh: bool,
    ) -> None:
        self.path = path
        self.config = config
        self.shard_count = shard_count
        self.config_digest = config_digest(config)
        #: shard index -> wire payload, as journaled.
        self._payloads: dict[int, dict] = payloads or {}
        #: shards already in the file when it was opened (what a resume skips).
        self.resumed_count = 0 if fresh else len(self._payloads)
        #: shards appended by this process.
        self.recorded_count = 0
        #: idempotent re-records that were already journaled.
        self.duplicates_ignored = 0
        self._handle = None

    # -- constructors ----------------------------------------------------

    @classmethod
    def create(cls, path, config, shard_count: int) -> "RunLedger":
        """Start a fresh ledger at ``path`` (fails if the file exists)."""
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        path = Path(path)
        header = {
            "kind": "header",
            "ledger_version": LEDGER_VERSION,
            "wire_version": WIRE_VERSION,
            "seed": config.seed,
            "scale": config.scale,
            "shard_count": shard_count,
            "config_digest": config_digest(config),
            "config": config_to_wire(config),
        }
        with open(path, "x", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return cls(path, config, shard_count, fresh=True)

    @classmethod
    def open(cls, path, config=None, shard_count: int | None = None) -> "RunLedger":
        """Load an existing ledger, verifying it belongs to this scan.

        ``config``/``shard_count``, when given, must match the header —
        a ``config_digest`` or shard-count mismatch raises
        :class:`LedgerError` (resuming someone else's journal would merge
        shards from a different scan). A torn trailing line (the mark of
        a kill mid-append) is tolerated *and truncated away*, so records
        appended by the resumed run land on a clean line boundary instead
        of turning the tear into interior corruption at the next open.
        """
        path = Path(path)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            raise LedgerError(f"no ledger at {path}") from None
        if not lines:
            raise LedgerError(f"{path}: empty file, not a ledger")
        header = cls._parse_header(path, lines[0])
        ledger_config = config_from_wire(header["config"])
        if config is not None and config_digest(config) != header["config_digest"]:
            raise LedgerError(
                f"{path}: config digest mismatch — the ledger was written for "
                f"(seed={header['seed']}, scale={header['scale']}, "
                f"shard_count={header['shard_count']}); refusing to resume a "
                f"different scan"
            )
        if shard_count is not None and shard_count != header["shard_count"]:
            raise LedgerError(
                f"{path}: shard count mismatch — ledger has "
                f"{header['shard_count']}, caller expects {shard_count}"
            )
        payloads, torn = cls._parse_records(path, lines[1:], header["shard_count"])
        if torn:
            cls._truncate_torn_tail(path, lines)
        return cls(
            path, ledger_config, header["shard_count"],
            payloads=payloads, fresh=False,
        )

    @classmethod
    def resume_or_create(cls, path, config, shard_count: int) -> "RunLedger":
        """Open ``path`` when it exists (verified), else start it fresh."""
        if Path(path).exists():
            return cls.open(path, config=config, shard_count=shard_count)
        return cls.create(path, config, shard_count)

    @classmethod
    def for_config(cls, path, config) -> "RunLedger":
        """Resume-or-create with the shard count resolved from ``config``
        exactly as the engines resolve it (CLI/example convenience)."""
        from ..engine.plan import build_schedule, resolve_shard_count

        tasks = build_schedule(config.scale, config.seed)
        return cls.resume_or_create(
            path, config, resolve_shard_count(config.shards, len(tasks))
        )

    # -- header / record parsing ----------------------------------------

    @staticmethod
    def _parse_header(path: Path, line: str) -> dict:
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise LedgerError(f"{path}: undecodable header line: {exc}") from None
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise LedgerError(f"{path}: first line is not a ledger header")
        version = header.get("ledger_version")
        if version != LEDGER_VERSION:
            raise LedgerError(
                f"{path}: ledger format version mismatch — file says "
                f"{version!r}, this build speaks v{LEDGER_VERSION}"
            )
        if header.get("wire_version") != WIRE_VERSION:
            raise LedgerError(
                f"{path}: wire schema version mismatch — file says "
                f"{header.get('wire_version')!r}, this build speaks "
                f"v{WIRE_VERSION}"
            )
        for field in ("seed", "scale", "shard_count", "config_digest", "config"):
            if field not in header:
                raise LedgerError(f"{path}: header is missing {field!r}")
        return header

    @staticmethod
    def _parse_records(
        path: Path, lines: list[str], shard_count: int
    ) -> tuple[dict, bool]:
        payloads: dict[int, dict] = {}
        torn = False
        last = len(lines) - 1
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == last:
                    torn = True  # torn trailing write: the kill's signature
                    break
                raise LedgerError(
                    f"{path}: corrupt interior record at line {number + 2}"
                ) from None
            if not isinstance(record, dict) or record.get("kind") != "shard":
                raise LedgerError(
                    f"{path}: line {number + 2} is not a shard record"
                )
            shard = record.get("shard")
            payload = record.get("payload")
            if not isinstance(shard, int) or not 0 <= shard < shard_count:
                raise LedgerError(
                    f"{path}: line {number + 2} names shard {shard!r}, "
                    f"outside 0..{shard_count - 1}"
                )
            if not isinstance(payload, dict) or payload.get("v") != WIRE_VERSION:
                raise LedgerError(
                    f"{path}: shard {shard} payload has wire version "
                    f"{payload.get('v') if isinstance(payload, dict) else None!r}, "
                    f"this build speaks v{WIRE_VERSION}"
                )
            if shard in payloads:
                if payloads[shard] != payload:
                    raise LedgerError(
                        f"{path}: divergent duplicate records for shard {shard}"
                    )
                continue  # identical duplicate: first wins
            payloads[shard] = payload
        return payloads, torn

    @staticmethod
    def _truncate_torn_tail(path: Path, lines: list[str]) -> None:
        """Cut the torn final line so appends resume on a line boundary."""
        intact = sum(len(line.encode("utf-8")) + 1 for line in lines[:-1])
        with open(path, "r+b") as handle:
            handle.truncate(intact)
            handle.flush()
            os.fsync(handle.fileno())

    # -- journaling ------------------------------------------------------

    def record(self, result: ShardResult) -> bool:
        """Journal one finished shard; False if it was already journaled."""
        return self.record_payload(
            result.shard_index, shard_result_to_wire(result)
        )

    def record_payload(self, shard: int, payload: dict) -> bool:
        """Journal one shard's wire payload durably (idempotent).

        A shard already journaled with the same payload is skipped
        (``False``; counted in ``duplicates_ignored``) — the late-result
        path after a resume. A *different* payload for the same shard
        raises :class:`LedgerError`: the determinism contract says that
        cannot happen, so it marks corruption, not a race.
        """
        if not 0 <= shard < self.shard_count:
            raise LedgerError(
                f"shard {shard} outside 0..{self.shard_count - 1}"
            )
        if not isinstance(payload, dict) or payload.get("v") != WIRE_VERSION:
            raise LedgerError(
                f"shard {shard}: refusing to journal a payload with wire "
                f"version {payload.get('v') if isinstance(payload, dict) else None!r}"
            )
        existing = self._payloads.get(shard)
        if existing is not None:
            if existing != payload:
                raise LedgerError(
                    f"shard {shard}: divergent result for an already-journaled "
                    f"shard — same scan identity must produce identical shards"
                )
            self.duplicates_ignored += 1
            return False
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(
            json.dumps({"kind": "shard", "shard": shard, "payload": payload})
            + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._payloads[shard] = payload
        self.recorded_count += 1
        return True

    # -- resume / merge --------------------------------------------------

    @property
    def completed_payloads(self) -> dict[int, dict]:
        """Journaled shard payloads (shard index -> wire dict), read-only use."""
        return self._payloads

    def completed_results(self) -> dict[int, ShardResult]:
        """Journaled shards decoded back to :class:`ShardResult`."""
        return {
            shard: shard_result_from_wire(payload)
            for shard, payload in self._payloads.items()
        }

    def remaining(self) -> list[int]:
        """Shard indices still missing from the journal, ascending."""
        return [
            shard for shard in range(self.shard_count)
            if shard not in self._payloads
        ]

    @property
    def is_complete(self) -> bool:
        return len(self._payloads) == self.shard_count

    def merge(self):
        """Decode every journaled shard and merge, in shard order.

        This is the single merge path for ledger-backed runs: batch,
        stream and cluster all journal first and merge from the journal,
        which is what makes an interrupted-and-resumed run byte-identical
        to an uninterrupted one.
        """
        missing = self.remaining()
        if missing:
            raise LedgerError(
                f"cannot merge an incomplete ledger: shard(s) {missing} "
                f"not journaled"
            )
        outcomes = [
            shard_result_from_wire(self._payloads[shard])
            for shard in range(self.shard_count)
        ]
        return merge_shard_results(self.config, outcomes)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def ensure_ledger(ledger, config, shard_count: int) -> RunLedger | None:
    """Normalize an engine's ``ledger`` argument.

    ``None`` passes through; a path resumes-or-creates; an existing
    :class:`RunLedger` is verified against this scan's ``config_digest``
    and shard count (mismatch raises :class:`LedgerError`).
    """
    if ledger is None:
        return None
    if isinstance(ledger, RunLedger):
        if ledger.config_digest != config_digest(config):
            raise LedgerError(
                f"{ledger.path}: ledger was opened for a different config "
                f"(digest mismatch)"
            )
        if ledger.shard_count != shard_count:
            raise LedgerError(
                f"{ledger.path}: ledger has shard_count={ledger.shard_count}, "
                f"this run resolves {shard_count}"
            )
        return ledger
    return RunLedger.resume_or_create(ledger, config, shard_count)
