"""dYdX SoloMargin-style flash loans.

dYdX has no dedicated flash-loan entry point: a borrower submits one
``operate`` call containing a *Withdraw → Call → Deposit* action sequence,
and the margin check at the end only requires the account to be solvent —
so withdrawing, using and re-depositing funds inside one transaction is a
de-facto flash loan with a flat 2-wei fee.

Paper Table II fingerprints this provider by the four functions
``Operate``/``Withdraw``/``callFunction``/``Deposit`` and their four
event logs ``LogOperation``/``LogWithdraw``/``LogCall``/``LogDeposit``;
all are reproduced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..chain.contract import Msg, external
from ..chain.types import Address
from .base import DeFiProtocol

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["SoloMargin", "Action", "withdraw_action", "call_action", "deposit_action", "DYDX_FLASH_FEE_WEI"]

#: dYdX's famous flat repayment premium: 2 wei.
DYDX_FLASH_FEE_WEI = 2


@dataclass(frozen=True, slots=True)
class Action:
    """One operate() action: ``kind`` in {withdraw, call, deposit}."""

    kind: str
    token: Address | None = None
    amount: int = 0
    target: Address | None = None
    data: object = None


def withdraw_action(token: Address, amount: int) -> Action:
    return Action(kind="withdraw", token=token, amount=amount)


def call_action(target: Address, data: object = None) -> Action:
    return Action(kind="call", target=target, data=data)


def deposit_action(token: Address, amount: int) -> Action:
    return Action(kind="deposit", token=token, amount=amount)


class SoloMargin(DeFiProtocol):
    """The dYdX margin account bank."""

    APP_NAME = "dYdX"

    @external
    def fund(self, msg: Msg, token: Address, amount: int) -> None:
        """Seed pool liquidity (scenario setup)."""
        self.pull_token(token, msg.sender, amount)
        self.storage.add(("liquidity", token), amount)

    @external
    def operate(self, msg: Msg, actions: Sequence[Action]) -> None:
        """Run an action sequence; solvency is checked by net balance.

        Tracks the net flow per token across the sequence and requires the
        account to end the operation at least ``DYDX_FLASH_FEE_WEI`` ahead
        for every withdrawn token — the flash-loan repayment condition.
        """
        self.emit("LogOperation", sender=msg.sender)
        outstanding: dict[Address, int] = {}
        for action in actions:
            if action.kind == "withdraw":
                self._withdraw(msg.sender, action.token, action.amount)
                outstanding[action.token] = outstanding.get(action.token, 0) + action.amount
            elif action.kind == "call":
                self.emit("LogCall", sender=msg.sender, callee=action.target)
                self.call(action.target, "callFunction", msg.sender, action.data)
            elif action.kind == "deposit":
                self._deposit(msg.sender, action.token, action.amount)
                outstanding[action.token] = outstanding.get(action.token, 0) - action.amount
            else:
                self.require(False, f"unknown action kind {action.kind!r}")
        for token, net in outstanding.items():
            self.require(
                net <= -DYDX_FLASH_FEE_WEI,
                f"account not solvent for {token.short}",
            )

    # -- internals ------------------------------------------------------------

    def _withdraw(self, account: Address, token: Address, amount: int) -> None:
        available = self.storage.get(("liquidity", token), 0)
        self.require(0 < amount <= available, "insufficient withdraw liquidity")
        self.storage.add(("liquidity", token), -amount)
        self.push_token(token, account, amount)
        self.emit("LogWithdraw", account=account, market=token, amount=amount)

    def _deposit(self, account: Address, token: Address, amount: int) -> None:
        self.require(amount > 0, "zero deposit")
        self.pull_token(token, account, amount)
        self.storage.add(("liquidity", token), amount)
        self.emit("LogDeposit", account=account, market=token, amount=amount)
