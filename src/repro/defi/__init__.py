"""DeFi protocol substrate: AMMs, lending, flash loans, vaults, routers."""

from .aave import AAVE_FLASHLOAN_FEE_BPS, AaveLendingPool
from .aggregator import TradeAggregator
from .balancer import BalancerPool
from .base import DeFiProtocol, FlashLoanReceiver
from .bzx import MarginVenue
from .compound import LendingMarket
from .curve import StableSwapPool
from .dydx import (
    Action,
    DYDX_FLASH_FEE_WEI,
    SoloMargin,
    call_action,
    deposit_action,
    withdraw_action,
)
from .mixer import Mixer, commitment_of
from .oracle import DEFAULT_USD_PRICES, DexSpotOracle, UsdPriceOracle
from .uniswap import UniswapV2Factory, UniswapV2Pair, UniswapV2Router
from .vault import Vault

__all__ = [
    "AAVE_FLASHLOAN_FEE_BPS",
    "AaveLendingPool",
    "Action",
    "BalancerPool",
    "DEFAULT_USD_PRICES",
    "DYDX_FLASH_FEE_WEI",
    "DeFiProtocol",
    "DexSpotOracle",
    "FlashLoanReceiver",
    "LendingMarket",
    "MarginVenue",
    "Mixer",
    "SoloMargin",
    "StableSwapPool",
    "TradeAggregator",
    "UniswapV2Factory",
    "UniswapV2Pair",
    "UniswapV2Router",
    "UsdPriceOracle",
    "Vault",
    "call_action",
    "commitment_of",
    "deposit_action",
    "withdraw_action",
]
