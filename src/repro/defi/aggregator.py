"""Trade aggregators / routing intermediaries (Kyber, 1inch style).

Aggregators stand *between* the counterparties of a trade: they receive
the input asset, execute the trade on the best venue, and forward the
output — optionally skimming a small service fee. At the transfer level
this creates the ``A -> aggregator -> B`` chains that LeiShen's *merge
inter-app transfers* rule collapses (paper Sec. V-B-2, the Kyber hop in
Fig. 6), with the 0.1% amount tolerance absorbing the fee.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chain.contract import Msg, external
from ..chain.types import Address
from .balancer import BalancerPool
from .base import DeFiProtocol
from .curve import StableSwapPool
from .uniswap import UniswapV2Pair

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["TradeAggregator"]


class TradeAggregator(DeFiProtocol):
    """A venue-agnostic trade router.

    Parameters
    ----------
    fee_bps:
        Service fee in basis points, taken from the output. Must stay
        below 10 bps for the merge rule's 0.1% tolerance to collapse the
        hop — real aggregators charge 0-10 bps, and the tests exercise
        both sides of the boundary.
    """

    APP_NAME = "Kyber"

    def __init__(self, chain: "Chain", address: Address, fee_bps: int = 0) -> None:
        super().__init__(chain, address)
        if fee_bps < 0:
            raise ValueError("negative fee")
        self.fee_bps = fee_bps

    @external
    def trade(
        self,
        msg: Msg,
        venue: Address,
        token_in: Address,
        amount_in: int,
        token_out: Address,
        recipient: Address | None = None,
    ) -> int:
        """Pull ``amount_in`` from the caller, trade on ``venue``, forward out.

        Dispatches on the venue's contract type (Uniswap pair, Balancer
        pool or Curve pool). Returns the amount forwarded to the
        recipient, net of the aggregator fee.
        """
        to = recipient or msg.sender
        self.pull_token(token_in, msg.sender, amount_in)
        received = self._execute(venue, token_in, amount_in, token_out)
        fee = received * self.fee_bps // 10_000
        forwarded = received - fee
        self.push_token(token_out, to, forwarded)
        self.emit(
            "AggregatedTrade",
            trader=msg.sender,
            venue=venue,
            tokenIn=token_in,
            amountIn=amount_in,
            tokenOut=token_out,
            amountOut=forwarded,
        )
        return forwarded

    # -- venue adapters ------------------------------------------------------

    def _execute(self, venue: Address, token_in: Address, amount_in: int, token_out: Address) -> int:
        contract = self.chain.contract_at(venue)
        if isinstance(contract, UniswapV2Pair):
            return self._swap_uniswap(contract, token_in, amount_in)
        if isinstance(contract, BalancerPool):
            return self._swap_balancer(contract, token_in, amount_in, token_out)
        if isinstance(contract, StableSwapPool):
            return self._swap_curve(contract, token_in, amount_in, token_out)
        self.require(False, f"unsupported venue {type(contract).__name__}")
        raise AssertionError("unreachable")

    def _swap_uniswap(self, pair: UniswapV2Pair, token_in: Address, amount_in: int) -> int:
        amount_out = pair.get_amount_out(amount_in, token_in)
        self.push_token(token_in, pair.address, amount_in)
        token_out = pair.other_token(token_in)
        out0, out1 = (amount_out, 0) if token_out == pair.token0 else (0, amount_out)
        self.call(pair.address, "swap", out0, out1, self.address)
        return amount_out

    def _swap_balancer(self, pool: BalancerPool, token_in: Address, amount_in: int, token_out: Address) -> int:
        self.call(token_in, "approve", pool.address, amount_in)
        return self.call(pool.address, "swapExactAmountIn", token_in, amount_in, token_out)

    def _swap_curve(self, pool: StableSwapPool, token_in: Address, amount_in: int, token_out: Address) -> int:
        self.call(token_in, "approve", pool.address, amount_in)
        i = pool.index_of(token_in)
        j = pool.index_of(token_out)
        return self.call(pool.address, "exchange", i, j, amount_in)
