"""Uniswap V2-style constant-product AMM with flash swaps.

Implements the three behaviours the paper depends on:

- **swap** with the 0.3% fee enforced through the ``K`` invariant check,
  using Uniswap's integer fee math (``balance*1000 - amountIn*3``);
- **flash swaps**: ``swap`` with non-empty ``data`` calls the recipient's
  ``uniswapV2Call`` before the invariant check — this is how Uniswap acts
  as a flash-loan provider (paper Table II: ``swap`` + ``uniswapV2Call``);
- **mint/burn liquidity** with LP tokens minted from / burned to the
  BlackHole address (paper Table III's mint/remove liquidity shapes).

The pair also doubles as Uniswap's on-chain price oracle: bZx-style
victims read ``spot_price`` straight from the reserves, which is exactly
the dependency flpAttacks exploit.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..chain.contract import Msg, external
from ..chain.errors import InsufficientLiquidity, Revert
from ..chain.types import Address
from ..tokens.erc20 import ERC20
from .base import DeFiProtocol

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["UniswapV2Pair", "UniswapV2Factory", "UniswapV2Router"]

#: Uniswap V2 permanently locks the first 1000 LP wei.
MINIMUM_LIQUIDITY = 10**3


class UniswapV2Pair(ERC20):
    """A two-token constant-product liquidity pool; the LP token is the pair."""

    APP_NAME = "Uniswap"
    #: swap fee in basis points of 1000 (Uniswap V2 charges 3/1000).
    FEE_PER_MILLE = 3

    def __init__(
        self,
        chain: "Chain",
        address: Address,
        token0: Address,
        token1: Address,
        lp_symbol: str = "UNI-V2",
    ) -> None:
        if token0 == token1:
            raise ValueError("pair tokens must differ")
        super().__init__(chain, address, symbol=lp_symbol, decimals=18)
        self.token0 = token0
        self.token1 = token1

    # -- views -----------------------------------------------------------

    def get_reserves(self) -> tuple[int, int]:
        return self.storage.get("reserve0", 0), self.storage.get("reserve1", 0)

    def reserve_of(self, token: Address) -> int:
        reserve0, reserve1 = self.get_reserves()
        if token == self.token0:
            return reserve0
        if token == self.token1:
            return reserve1
        raise Revert(f"token {token.short} not in pair")

    def other_token(self, token: Address) -> Address:
        if token == self.token0:
            return self.token1
        if token == self.token1:
            return self.token0
        raise Revert(f"token {token.short} not in pair")

    def spot_price(self, base: Address, quote: Address) -> float:
        """Price of one ``base`` token in ``quote`` tokens (oracle read)."""
        reserve_base = self.reserve_of(base)
        reserve_quote = self.reserve_of(quote)
        if reserve_base == 0:
            raise InsufficientLiquidity("empty pool has no price")
        return reserve_quote / reserve_base

    def get_amount_out(self, amount_in: int, token_in: Address) -> int:
        """Output for an exact input, after the swap fee (UniswapV2Library)."""
        reserve_in = self.reserve_of(token_in)
        reserve_out = self.reserve_of(self.other_token(token_in))
        if amount_in <= 0:
            raise Revert("insufficient input amount")
        if reserve_in == 0 or reserve_out == 0:
            raise InsufficientLiquidity("no liquidity")
        amount_in_with_fee = amount_in * (1000 - self.FEE_PER_MILLE)
        numerator = amount_in_with_fee * reserve_out
        denominator = reserve_in * 1000 + amount_in_with_fee
        return numerator // denominator

    def get_amount_in(self, amount_out: int, token_out: Address) -> int:
        """Input required for an exact output, after the swap fee."""
        reserve_out = self.reserve_of(token_out)
        reserve_in = self.reserve_of(self.other_token(token_out))
        if amount_out <= 0:
            raise Revert("insufficient output amount")
        if amount_out >= reserve_out:
            raise InsufficientLiquidity("output exceeds reserves")
        numerator = reserve_in * amount_out * 1000
        denominator = (reserve_out - amount_out) * (1000 - self.FEE_PER_MILLE)
        return numerator // denominator + 1

    # -- liquidity ---------------------------------------------------------

    @external
    def mint(self, msg: Msg, to: Address) -> int:
        """Mint LP tokens for whatever was transferred in since last sync."""
        reserve0, reserve1 = self.get_reserves()
        balance0 = self._token_balance(self.token0)
        balance1 = self._token_balance(self.token1)
        amount0 = balance0 - reserve0
        amount1 = balance1 - reserve1
        total = self.total_supply()
        if total == 0:
            liquidity = math.isqrt(amount0 * amount1) - MINIMUM_LIQUIDITY
            if liquidity <= 0:
                raise InsufficientLiquidity("initial deposit too small")
            super().mint(Address("0x" + "0" * 40), MINIMUM_LIQUIDITY)
        else:
            liquidity = min(
                amount0 * total // reserve0 if reserve0 else 0,
                amount1 * total // reserve1 if reserve1 else 0,
            )
        if liquidity <= 0:
            raise InsufficientLiquidity("insufficient liquidity minted")
        super().mint(to, liquidity)
        self._update(balance0, balance1)
        self.emit_trade("Mint", sender=msg.sender, amount0=amount0, amount1=amount1)
        return liquidity

    @external
    def burn(self, msg: Msg, to: Address) -> tuple[int, int]:
        """Burn the LP tokens held by the pair, paying out both assets."""
        liquidity = self.balance_of(self.address)
        total = self.total_supply()
        if liquidity <= 0 or total <= 0:
            raise InsufficientLiquidity("nothing to burn")
        balance0 = self._token_balance(self.token0)
        balance1 = self._token_balance(self.token1)
        amount0 = liquidity * balance0 // total
        amount1 = liquidity * balance1 // total
        if amount0 <= 0 or amount1 <= 0:
            raise InsufficientLiquidity("insufficient liquidity burned")
        super().burn(self.address, liquidity)
        self.call(self.token0, "transfer", to, amount0)
        self.call(self.token1, "transfer", to, amount1)
        self._update(self._token_balance(self.token0), self._token_balance(self.token1))
        self.emit_trade("Burn", sender=msg.sender, amount0=amount0, amount1=amount1, to=to)
        return amount0, amount1

    # -- swapping ------------------------------------------------------------

    @external
    def swap(
        self,
        msg: Msg,
        amount0_out: int,
        amount1_out: int,
        to: Address,
        data: object = None,
    ) -> None:
        """Low-level swap; with ``data`` it becomes a flash swap.

        Exactly like the real pair, output tokens are sent optimistically,
        the recipient's ``uniswapV2Call`` runs if ``data`` is non-empty,
        and the fee-adjusted constant-product check at the end reverts the
        whole transaction if the pool was not made whole.
        """
        if amount0_out < 0 or amount1_out < 0 or amount0_out + amount1_out == 0:
            raise Revert("insufficient output amount")
        reserve0, reserve1 = self.get_reserves()
        if amount0_out >= reserve0 or amount1_out >= reserve1:
            raise InsufficientLiquidity("insufficient liquidity")
        if amount0_out:
            self.call(self.token0, "transfer", to, amount0_out)
        if amount1_out:
            self.call(self.token1, "transfer", to, amount1_out)
        if data:
            self.call(to, "uniswapV2Call", msg.sender, amount0_out, amount1_out, data)
        balance0 = self._token_balance(self.token0)
        balance1 = self._token_balance(self.token1)
        amount0_in = max(0, balance0 - (reserve0 - amount0_out))
        amount1_in = max(0, balance1 - (reserve1 - amount1_out))
        if amount0_in + amount1_in == 0:
            raise Revert("insufficient input amount")
        fee = self.FEE_PER_MILLE
        adjusted0 = balance0 * 1000 - amount0_in * fee
        adjusted1 = balance1 * 1000 - amount1_in * fee
        if adjusted0 * adjusted1 < reserve0 * reserve1 * 1000 * 1000:
            raise Revert("K invariant violated")
        self._update(balance0, balance1)
        self.emit_trade(
            "Swap",
            sender=msg.sender,
            amount0In=amount0_in,
            amount1In=amount1_in,
            amount0Out=amount0_out,
            amount1Out=amount1_out,
            to=to,
        )

    @external
    def sync(self, msg: Msg) -> None:
        """Force reserves to match balances (used after donations)."""
        self._update(self._token_balance(self.token0), self._token_balance(self.token1))

    # -- internals -------------------------------------------------------------

    def _token_balance(self, token: Address) -> int:
        return self.chain.contract_of(token, ERC20).balance_of(self.address)

    def _update(self, balance0: int, balance1: int) -> None:
        self.storage.set("reserve0", balance0)
        self.storage.set("reserve1", balance1)
        self.emit("Sync", reserve0=balance0, reserve1=balance1)


class UniswapV2Factory(DeFiProtocol):
    """Deploys pairs; the creation edge is what account tagging walks."""

    APP_NAME = "Uniswap"

    @external
    def createPair(self, msg: Msg, token_a: Address, token_b: Address) -> Address:
        pair = self.create_pair(token_a, token_b)
        return pair.address

    def create_pair(self, token_a: Address, token_b: Address, lp_symbol: str = "UNI-V2") -> UniswapV2Pair:
        """Deploy a pair from this factory (convenience for scenario setup)."""
        token0, token1 = sorted((token_a, token_b))
        pair = self.chain.deploy(
            self.address,
            type(self).PAIR_CLASS,
            token0,
            token1,
            lp_symbol,
            hint=f"pair-{token0.short}-{token1.short}",
        )
        pair.app_name = self.app_name
        self.emit("PairCreated", token0=token0, token1=token1, pair=pair.address)
        return pair

    PAIR_CLASS = UniswapV2Pair


class UniswapV2Router(DeFiProtocol):
    """Periphery router: pulls funds from the trader and talks to pairs.

    Unlike a yield aggregator, the router is part of the same application
    as its pairs (it carries the same app tag), so its hops collapse into
    intra-app transfers during simplification.
    """

    APP_NAME = "Uniswap"

    @external
    def swapExactTokensForTokens(
        self,
        msg: Msg,
        amount_in: int,
        amount_out_min: int,
        pairs: tuple[Address, ...],
        token_in: Address,
        to: Address | None = None,
    ) -> int:
        """Multi-hop exact-in swap along ``pairs``; returns the final output."""
        recipient = to or msg.sender
        self.pull_token(token_in, msg.sender, amount_in)
        current_token, current_amount = token_in, amount_in
        for pair_address in pairs:
            pair = self.chain.contract_of(pair_address, UniswapV2Pair)
            amount_out = pair.get_amount_out(current_amount, current_token)
            self.push_token(current_token, pair_address, current_amount)
            out0, out1 = (
                (0, amount_out)
                if pair.other_token(current_token) == pair.token1
                else (amount_out, 0)
            )
            self.call(pair_address, "swap", out0, out1, self.address)
            current_token = pair.other_token(current_token)
            current_amount = amount_out
        self.require(current_amount >= amount_out_min, "slippage")
        self.push_token(current_token, recipient, current_amount)
        return current_amount

    @external
    def addLiquidity(
        self,
        msg: Msg,
        pair_address: Address,
        amount0: int,
        amount1: int,
        to: Address | None = None,
    ) -> int:
        """Deposit both assets into a pair and mint LP to the caller."""
        recipient = to or msg.sender
        pair = self.chain.contract_of(pair_address, UniswapV2Pair)
        self.pull_token(pair.token0, msg.sender, amount0)
        self.pull_token(pair.token1, msg.sender, amount1)
        self.push_token(pair.token0, pair_address, amount0)
        self.push_token(pair.token1, pair_address, amount1)
        return self.call(pair_address, "mint", recipient)

    @external
    def removeLiquidity(
        self,
        msg: Msg,
        pair_address: Address,
        liquidity: int,
        to: Address | None = None,
    ) -> tuple[int, int]:
        """Burn caller LP tokens and return both assets."""
        recipient = to or msg.sender
        self.pull_token(pair_address, msg.sender, liquidity)
        self.push_token(pair_address, pair_address, liquidity)
        return self.call(pair_address, "burn", recipient)
