"""AAVE-style lending pool with flash loans.

Paper Table II identifies AAVE flash loans by the ``flashLoan`` function
and the ``FlashLoan`` event — both reproduced here. AAVE V1 charged a
0.09% flash-loan fee, pulled back from the receiver after its
``executeOperation`` callback returns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chain.contract import Msg, external
from ..chain.types import Address
from .base import DeFiProtocol

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["AaveLendingPool", "AAVE_FLASHLOAN_FEE_BPS"]

#: 0.09% of the borrowed amount, AAVE V1's flash-loan premium.
AAVE_FLASHLOAN_FEE_BPS = 9


class AaveLendingPool(DeFiProtocol):
    """Deposit-funded pool offering uncollateralized single-tx loans."""

    APP_NAME = "AAVE"

    @external
    def deposit(self, msg: Msg, token: Address, amount: int) -> None:
        """Fund the pool (liquidity providers; setup helper in scenarios)."""
        self.pull_token(token, msg.sender, amount)
        self.storage.add(("liquidity", token), amount)
        self.emit("Deposit", reserve=token, user=msg.sender, amount=amount)

    @external
    def flashLoan(
        self,
        msg: Msg,
        receiver: Address,
        token: Address,
        amount: int,
        params: object = None,
    ) -> None:
        """Lend ``amount`` for the duration of the transaction.

        Sends the funds, invokes the receiver's ``executeOperation``, then
        pulls back principal plus the 0.09% premium. If the pull fails the
        revert unwinds everything — transaction atomicity is the
        collateral.
        """
        available = self.storage.get(("liquidity", token), 0)
        self.require(amount > 0, "zero amount")
        self.require(amount <= available, "insufficient flash liquidity")
        fee = amount * AAVE_FLASHLOAN_FEE_BPS // 10_000
        self.push_token(token, receiver, amount)
        self.call(receiver, "executeOperation", token, amount, fee, params)
        self.pull_token(token, receiver, amount + fee)
        self.storage.add(("liquidity", token), fee)
        self.emit(
            "FlashLoan",
            target=receiver,
            reserve=token,
            amount=amount,
            totalFee=fee,
        )
