"""Price oracles.

Two kinds of price feeds appear in the paper:

- **on-chain DEX spot oracles** — DeFi apps (bZx, vaults) read asset
  prices straight from AMM reserves; this is the dependency flpAttacks
  manipulate (Sec. II-B);
- **historical USD prices** — used only offline, to value borrowed funds
  and attack profits (Sec. III-B, Table VII). We substitute a seeded
  deterministic price table for the market-data feeds the authors used.
"""

from __future__ import annotations

import hashlib
import math
from typing import TYPE_CHECKING, Mapping

from ..chain.types import Address

if TYPE_CHECKING:  # pragma: no cover
    from .uniswap import UniswapV2Pair

__all__ = ["DexSpotOracle", "UsdPriceOracle", "DEFAULT_USD_PRICES"]


class DexSpotOracle:
    """Reads spot prices from one or more AMM pairs.

    ``price(base, quote)`` returns how many ``quote`` tokens one ``base``
    token fetches, per the first registered pool containing both.
    """

    def __init__(self, pools: list["UniswapV2Pair"]) -> None:
        self._pools = list(pools)

    def add_pool(self, pool: "UniswapV2Pair") -> None:
        self._pools.append(pool)

    def price(self, base: Address, quote: Address) -> float:
        if base == quote:
            return 1.0
        for pool in self._pools:
            tokens = {pool.token0, pool.token1}
            if base in tokens and quote in tokens:
                return pool.spot_price(base, quote)
        # one level of routing through a shared intermediate (e.g. the
        # pumped-token -> WETH -> reward-token path synth minters price).
        for pool in self._pools:
            tokens = {pool.token0, pool.token1}
            if base not in tokens:
                continue
            mid = pool.other_token(base)
            for second in self._pools:
                second_tokens = {second.token0, second.token1}
                if mid in second_tokens and quote in second_tokens:
                    return pool.spot_price(base, mid) * second.spot_price(mid, quote)
        raise LookupError(f"no pool prices {base.short}/{quote.short}")

    def pricer(self, quote: Address):
        """Return ``price_of(token) -> float`` quoting everything in ``quote``
        (the callable shape :class:`~repro.defi.compound.LendingMarket` takes).
        """

        def price_of(token: Address) -> float:
            return self.price(token, quote)

        return price_of


#: Baseline USD prices (early-2021-ish levels); per-day factors move around
#: these. Unknown symbols default to 1 USD (stablecoin-like).
DEFAULT_USD_PRICES: Mapping[str, float] = {
    "ETH": 1_500.0,
    "WETH": 1_500.0,
    "WBTC": 30_000.0,
    "BNB": 300.0,
    "WBNB": 300.0,
    "USDC": 1.0,
    "USDT": 1.0,
    "DAI": 1.0,
    "BUSD": 1.0,
    "sUSD": 1.0,
    "3Crv": 1.01,
    "LINK": 20.0,
    "SNX": 10.0,
}


class UsdPriceOracle:
    """Deterministic historical USD price table.

    ``price(symbol, day)`` applies a +/-20% pseudo-random but reproducible
    daily factor around the symbol's base price — enough structure to rank
    attack profits the way Table VII does without real market data.
    """

    def __init__(self, base_prices: Mapping[str, float] | None = None, seed: str = "leishen") -> None:
        self._base = dict(DEFAULT_USD_PRICES)
        if base_prices:
            self._base.update(base_prices)
        self._seed = seed

    def set_price(self, symbol: str, usd: float) -> None:
        self._base[symbol] = usd

    def price(self, symbol: str, day: int = 0) -> float:
        base = self._base.get(symbol, 1.0)
        digest = hashlib.sha256(f"{self._seed}|{symbol}|{day}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        factor = 1.0 + 0.2 * math.sin(2 * math.pi * unit)
        return base * factor

    def value_usd(self, symbol: str, amount: int, decimals: int = 18, day: int = 0) -> float:
        return self.price(symbol, day) * amount / 10**decimals
