"""Compound-style collateralized lending market.

Models the asset flows of supply/borrow/repay/redeem. The borrow path is
the one the bZx-1 attacker used as the *first symmetrical trade*: deposit
5,500 ETH of collateral, walk out with 112 WBTC (paper Fig. 3, step 2) —
at the app-transfer level that is ETH in, WBTC out, i.e. a swap shape.

Prices come from a pluggable oracle so scenarios can point the market at
a manipulated DEX pool or at a fair reference price.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..chain.contract import Msg, external
from ..chain.types import Address
from .base import DeFiProtocol

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["LendingMarket"]

#: loan-to-value expressed in basis points (75% like Compound's majors).
DEFAULT_LTV_BPS = 7_500


class LendingMarket(DeFiProtocol):
    """A two-sided lending market over arbitrary ERC20 collateral/debt pairs."""

    APP_NAME = "Compound"

    def __init__(
        self,
        chain: "Chain",
        address: Address,
        price_of: Callable[[Address], float],
        ltv_bps: int = DEFAULT_LTV_BPS,
    ) -> None:
        """``price_of(token)`` returns the token's reference price in a
        common unit (e.g. ETH); only price *ratios* matter."""
        super().__init__(chain, address)
        self.price_of = price_of
        self.ltv_bps = ltv_bps

    # -- liquidity -------------------------------------------------------

    @external
    def supply(self, msg: Msg, token: Address, amount: int) -> None:
        """Lend assets into the market (LPs; also scenario seeding)."""
        self.pull_token(token, msg.sender, amount)
        self.storage.add(("cash", token), amount)
        self.emit("Mint", minter=msg.sender, amount=amount, token=token)

    # -- borrowing ----------------------------------------------------------

    @external
    def borrow(
        self,
        msg: Msg,
        collateral_token: Address,
        collateral_amount: int,
        borrow_token: Address,
        borrow_amount: int,
    ) -> None:
        """Post collateral and draw a loan in one call.

        Reverts if the requested loan exceeds the collateral value times
        the market's loan-to-value ratio, or the market lacks cash.
        """
        self.require(collateral_amount > 0 and borrow_amount > 0, "zero amounts")
        collateral_value = self.price_of(collateral_token) * collateral_amount
        borrow_value = self.price_of(borrow_token) * borrow_amount
        self.require(
            borrow_value * 10_000 <= collateral_value * self.ltv_bps,
            "undercollateralized",
        )
        self.require(
            self.storage.get(("cash", borrow_token), 0) >= borrow_amount,
            "insufficient market cash",
        )
        self.pull_token(collateral_token, msg.sender, collateral_amount)
        self.storage.add(("collateral", msg.sender, collateral_token), collateral_amount)
        self.storage.add(("cash", collateral_token), collateral_amount)
        self.storage.add(("cash", borrow_token), -borrow_amount)
        self.storage.add(("debt", msg.sender, borrow_token), borrow_amount)
        self.push_token(borrow_token, msg.sender, borrow_amount)
        self.emit(
            "Borrow",
            borrower=msg.sender,
            borrowToken=borrow_token,
            borrowAmount=borrow_amount,
            collateralToken=collateral_token,
            collateralAmount=collateral_amount,
        )

    @external
    def liquidate(
        self,
        msg: Msg,
        borrower: Address,
        debt_token: Address,
        amount: int,
        collateral_token: Address,
    ) -> int:
        """Repay part of an underwater borrower's debt and seize collateral
        at a 5% bonus — the standard liquidation flow flash loans fund."""
        debt = self.storage.get(("debt", borrower, debt_token), 0)
        self.require(0 < amount <= debt, "liquidate exceeds debt")
        ratio = self.price_of(debt_token) / self.price_of(collateral_token)
        seized = int(amount * ratio * 1.05)
        posted = self.storage.get(("collateral", borrower, collateral_token), 0)
        self.require(seized <= posted, "not enough collateral")
        self.pull_token(debt_token, msg.sender, amount)
        self.storage.add(("cash", debt_token), amount)
        self.storage.set(("debt", borrower, debt_token), debt - amount)
        self.storage.set(("collateral", borrower, collateral_token), posted - seized)
        self.storage.add(("cash", collateral_token), -seized)
        self.push_token(collateral_token, msg.sender, seized)
        self.emit("LiquidateBorrow", liquidator=msg.sender, borrower=borrower, amount=amount)
        return seized

    @external
    def repay(self, msg: Msg, borrow_token: Address, amount: int) -> None:
        """Pay down debt."""
        debt = self.storage.get(("debt", msg.sender, borrow_token), 0)
        self.require(0 < amount <= debt, "repay exceeds debt")
        self.pull_token(borrow_token, msg.sender, amount)
        self.storage.add(("cash", borrow_token), amount)
        self.storage.set(("debt", msg.sender, borrow_token), debt - amount)
        self.emit("RepayBorrow", borrower=msg.sender, amount=amount)

    @external
    def withdraw_collateral(self, msg: Msg, collateral_token: Address, amount: int) -> None:
        """Reclaim collateral; only safe when no outstanding debt remains.

        Simplification: we require all debt repaid rather than re-running a
        portfolio health check per withdrawal.
        """
        posted = self.storage.get(("collateral", msg.sender, collateral_token), 0)
        self.require(0 < amount <= posted, "withdraw exceeds collateral")
        for (slot, value) in list(self.chain.state.items_for(self.address)):
            if isinstance(slot, tuple) and slot[0] == "debt" and slot[1] == msg.sender and value > 0:
                self.require(False, "outstanding debt")
        self.storage.set(("collateral", msg.sender, collateral_token), posted - amount)
        self.storage.add(("cash", collateral_token), -amount)
        self.push_token(collateral_token, msg.sender, amount)
        self.emit("RedeemCollateral", redeemer=msg.sender, amount=amount)

    # -- views ------------------------------------------------------------------

    def debt_of(self, account: Address, token: Address) -> int:
        return self.storage.get(("debt", account, token), 0)

    def collateral_of(self, account: Address, token: Address) -> int:
        return self.storage.get(("collateral", account, token), 0)

    def cash_of(self, token: Address) -> int:
        return self.storage.get(("cash", token), 0)
