"""Curve-style StableSwap pool.

Implements the amplified invariant from Egorov's StableSwap paper with the
same integer Newton iterations the production Vyper contracts use. Curve
pools back several of the studied attacks (Harvest Finance trades through
the Y pool; Yearn's DAI vault deposits into 3Crv; Value DeFi prices its
mvUSD against 3Crv), so the pool exposes both trading and the
``virtual price`` oracle that vault share pricing reads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..chain.contract import Msg, external
from ..chain.errors import InsufficientLiquidity, Revert
from ..chain.types import Address
from ..tokens.erc20 import ERC20

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["StableSwapPool"]

_FEE_DENOMINATOR = 10**10
_PRECISION = 10**18


class StableSwapPool(ERC20):
    """An N-coin StableSwap pool whose LP token is the contract itself."""

    APP_NAME = "Curve"
    #: default trade fee: 0.04% (Curve's classic 4 bps), in 1e10 units.
    FEE = 4_000_000

    def __init__(
        self,
        chain: "Chain",
        address: Address,
        coins: Sequence[Address],
        amp: int = 100,
        lp_symbol: str = "crvLP",
        fee: int | None = None,
    ) -> None:
        if len(coins) < 2:
            raise ValueError("need at least two coins")
        super().__init__(chain, address, symbol=lp_symbol, decimals=18)
        self.coins = tuple(coins)
        self.amp = amp
        self.fee = self.FEE if fee is None else fee
        #: per-coin multiplier normalizing to 18 decimals.
        self._rates = tuple(
            10 ** (18 - chain.contract_of(coin, ERC20).decimals) for coin in coins
        )

    # -- invariant math -----------------------------------------------------

    def balances(self) -> list[int]:
        return [self.storage.get(("balance_record", coin), 0) for coin in self.coins]

    def _xp(self, balances: Sequence[int] | None = None) -> list[int]:
        raw = self.balances() if balances is None else list(balances)
        return [balance * rate for balance, rate in zip(raw, self._rates)]

    def get_D(self, xp: Sequence[int] | None = None) -> int:
        """Newton iteration for the StableSwap invariant D."""
        xp = self._xp() if xp is None else list(xp)
        n = len(xp)
        s = sum(xp)
        if s == 0:
            return 0
        d = s
        ann = self.amp * n
        for _ in range(255):
            d_p = d
            for x in xp:
                if x == 0:
                    raise InsufficientLiquidity("empty coin balance")
                d_p = d_p * d // (x * n)
            d_prev = d
            d = (ann * s + d_p * n) * d // ((ann - 1) * d + (n + 1) * d_p)
            if abs(d - d_prev) <= 1:
                return d
        raise Revert("D did not converge")

    def get_y(self, i: int, j: int, x: int, xp: Sequence[int]) -> int:
        """Solve for coin ``j``'s normalized balance given coin ``i`` at ``x``."""
        n = len(xp)
        d = self.get_D(xp)
        ann = self.amp * n
        c = d
        s = 0
        for k in range(n):
            if k == i:
                x_k = x
            elif k != j:
                x_k = xp[k]
            else:
                continue
            s += x_k
            c = c * d // (x_k * n)
        c = c * d // (ann * n)
        b = s + d // ann
        y = d
        for _ in range(255):
            y_prev = y
            y = (y * y + c) // (2 * y + b - d)
            if abs(y - y_prev) <= 1:
                return y
        raise Revert("y did not converge")

    def get_dy(self, i: int, j: int, dx: int) -> int:
        """Output of trading ``dx`` of coin i for coin j, after fee."""
        xp = self._xp()
        x = xp[i] + dx * self._rates[i]
        y = self.get_y(i, j, x, xp)
        dy = xp[j] - y - 1
        fee = dy * self.fee // _FEE_DENOMINATOR
        return (dy - fee) // self._rates[j]

    def virtual_price(self) -> int:
        """LP token value in 1e18 units: D / total_supply."""
        total = self.total_supply()
        if total == 0:
            return _PRECISION
        return self.get_D() * _PRECISION // total

    def index_of(self, coin: Address) -> int:
        try:
            return self.coins.index(coin)
        except ValueError:
            raise Revert(f"coin {coin.short} not in pool") from None

    # -- trading -----------------------------------------------------------

    @external
    def exchange(self, msg: Msg, i: int, j: int, dx: int, min_dy: int = 0) -> int:
        """Trade ``dx`` of coin i for coin j; pulls from the caller."""
        if not (0 <= i < len(self.coins) and 0 <= j < len(self.coins)) or i == j:
            raise Revert("bad coin index")
        dy = self.get_dy(i, j, dx)
        if dy < min_dy:
            raise Revert("slippage")
        if dy >= self.balances()[j]:
            raise InsufficientLiquidity("dy exceeds balance")
        self.call(self.coins[i], "transferFrom", msg.sender, self.address, dx)
        self.storage.add(("balance_record", self.coins[i]), dx)
        self.storage.add(("balance_record", self.coins[j]), -dy)
        self.call(self.coins[j], "transfer", msg.sender, dy)
        self.emit_trade(
            "TokenExchange",
            buyer=msg.sender,
            sold_id=i,
            tokens_sold=dx,
            bought_id=j,
            tokens_bought=dy,
        )
        return dy

    # -- liquidity ------------------------------------------------------------

    @external
    def add_liquidity(self, msg: Msg, amounts: Sequence[int], min_mint: int = 0) -> int:
        """Deposit coins (possibly one-sided) and mint LP at the D ratio."""
        if len(amounts) != len(self.coins):
            raise Revert("amounts length mismatch")
        total = self.total_supply()
        d0 = self.get_D() if total > 0 else 0
        for coin, amount in zip(self.coins, amounts):
            if amount < 0:
                raise Revert("negative deposit")
            if amount:
                self.call(coin, "transferFrom", msg.sender, self.address, amount)
                self.storage.add(("balance_record", coin), amount)
        d1 = self.get_D()
        if d1 <= d0:
            raise Revert("D must grow")
        minted = d1 if total == 0 else total * (d1 - d0) // d0
        if minted < min_mint:
            raise Revert("slippage")
        super().mint(msg.sender, minted)
        self.emit_trade("AddLiquidity", provider=msg.sender, token_supply=self.total_supply())
        return minted

    @external
    def remove_liquidity(self, msg: Msg, amount: int, min_amounts: Sequence[int] | None = None) -> list[int]:
        """Burn LP and withdraw every coin proportionally."""
        total = self.total_supply()
        if total <= 0 or amount <= 0:
            raise InsufficientLiquidity("nothing to remove")
        outputs: list[int] = []
        balances = self.balances()
        super().burn(msg.sender, amount)
        for idx, coin in enumerate(self.coins):
            out = balances[idx] * amount // total
            if min_amounts is not None and out < min_amounts[idx]:
                raise Revert("slippage")
            self.storage.add(("balance_record", coin), -out)
            self.call(coin, "transfer", msg.sender, out)
            outputs.append(out)
        self.emit_trade("RemoveLiquidity", provider=msg.sender, token_supply=self.total_supply())
        return outputs
