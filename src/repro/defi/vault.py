"""Share-priced yield vaults (Harvest fUSDC / Yearn yDAI style).

A vault takes deposits of one underlying token and mints share tokens at
the current *price per share*; withdrawals burn shares and pay the
underlying back out. The price per share marks the vault's holdings to
market through a pluggable valuation hook — in the real protocols that
hook reads a Curve pool's instantaneous rate, which is exactly what the
Harvest attacker skewed (deposit while shares look cheap, restore the
pool, withdraw at the honest price; paper Sec. IV-B3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..chain.contract import Msg, external
from ..chain.errors import InsufficientLiquidity, Revert
from ..chain.types import Address
from ..tokens.erc20 import ERC20

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["Vault"]

_PRECISION = 10**18


class Vault(ERC20):
    """A single-asset vault; the share token is the contract itself."""

    APP_NAME = "Harvest"

    def __init__(
        self,
        chain: "Chain",
        address: Address,
        underlying: Address,
        share_symbol: str,
        value_per_underlying: Callable[[], float] | None = None,
        deviation_guard_bps: int | None = None,
    ) -> None:
        """``value_per_underlying()`` marks one held underlying unit to
        market (1.0 = par). ``deviation_guard_bps`` reproduces the defence
        Harvest deployed after the attack: deposits/withdrawals revert if
        the mark deviates from par by more than the threshold
        (paper Sec. VI-D: a 3% threshold that attacks below 1% still slip
        under)."""
        underlying_decimals = chain.contract_of(underlying, ERC20).decimals
        super().__init__(chain, address, symbol=share_symbol, decimals=underlying_decimals)
        self.underlying = underlying
        self.value_per_underlying = value_per_underlying or (lambda: 1.0)
        self.deviation_guard_bps = deviation_guard_bps

    # -- pricing ------------------------------------------------------------

    def total_value(self) -> int:
        """Vault holdings marked to market, in underlying units."""
        held = self.chain.contract_of(self.underlying, ERC20).balance_of(self.address)
        return int(held * self.value_per_underlying())

    def price_per_share(self) -> float:
        total_shares = self.total_supply()
        if total_shares == 0:
            return 1.0
        return self.total_value() / total_shares

    def _check_guard(self) -> None:
        if self.deviation_guard_bps is None:
            return
        mark = self.value_per_underlying()
        deviation_bps = abs(mark - 1.0) * 10_000
        if deviation_bps > self.deviation_guard_bps:
            raise Revert("price deviation guard tripped")

    # -- deposits / withdrawals ------------------------------------------------

    @external
    def deposit(self, msg: Msg, amount: int) -> int:
        """Deposit underlying, receive freshly minted shares."""
        self.require_positive(amount)
        self._check_guard()
        total_shares = self.total_supply()
        total_value = self.total_value()
        self.call(self.underlying, "transferFrom", msg.sender, self.address, amount)
        if total_shares == 0 or total_value == 0:
            shares = amount
        else:
            shares = amount * total_shares // total_value
        if shares <= 0:
            raise InsufficientLiquidity("deposit too small for one share")
        super().mint(msg.sender, shares)
        self.emit_trade("Deposit", account=msg.sender, amount=amount, shares=shares)
        return shares

    @external
    def withdraw(self, msg: Msg, shares: int) -> int:
        """Burn shares, receive underlying at the current share price."""
        self.require_positive(shares)
        self._check_guard()
        total_shares = self.total_supply()
        if total_shares == 0:
            raise InsufficientLiquidity("no shares outstanding")
        amount = shares * self.total_value() // total_shares
        held = self.chain.contract_of(self.underlying, ERC20).balance_of(self.address)
        amount = min(amount, held)
        super().burn(msg.sender, shares)
        self.call(self.underlying, "transfer", msg.sender, amount)
        self.emit_trade("Withdraw", account=msg.sender, amount=amount, shares=shares)
        return amount

    def require_positive(self, amount: int) -> None:
        if amount <= 0:
            raise Revert("amount must be positive")
