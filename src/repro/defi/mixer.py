"""Tornado Cash-style coin mixer.

Paper Sec. VI-D2: "some attackers utilize coin-mixing services, e.g.,
Tornado Cash, to avoid tracking by mixing their attack profits with
honest users' assets." This contract reproduces the mechanism the paper
observed: fixed-denomination deposits against a commitment, withdrawals
to any address against the (simulated) nullifier — severing the on-chain
link between depositor and recipient.

No real zero-knowledge proofs here: the commitment/nullifier pair is a
hash preimage check, which preserves exactly the transfer-graph property
the attacker-behaviour analysis cares about (deposits and withdrawals
are unlinkable by address).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from ..chain.contract import Msg, external
from ..chain.types import Address
from .base import DeFiProtocol

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["Mixer", "commitment_of"]


def commitment_of(secret: str) -> str:
    """The deposit commitment for a withdrawal secret."""
    return hashlib.sha256(f"note|{secret}".encode()).hexdigest()


class Mixer(DeFiProtocol):
    """Fixed-denomination token mixer."""

    APP_NAME = "Tornado Cash"

    def __init__(self, chain: "Chain", address: Address, token: Address, denomination: int) -> None:
        super().__init__(chain, address)
        self.token = token
        self.denomination = denomination

    @external
    def deposit(self, msg: Msg, commitment: str) -> None:
        """Deposit exactly one denomination against a fresh commitment."""
        self.require(not self.storage.contains(("commitment", commitment)), "commitment reused")
        self.pull_token(self.token, msg.sender, self.denomination)
        self.storage.set(("commitment", commitment), True)
        self.storage.add("pool_size", 1)
        self.emit("Deposit", commitment=commitment)

    @external
    def withdraw(self, msg: Msg, secret: str, recipient: Address) -> None:
        """Withdraw one denomination to ``recipient`` by revealing the
        secret behind a deposited commitment (simulated ZK proof)."""
        commitment = commitment_of(secret)
        self.require(bool(self.storage.get(("commitment", commitment))), "unknown note")
        self.require(
            not self.storage.contains(("nullifier", secret)), "note already spent"
        )
        self.storage.set(("nullifier", secret), True)
        self.storage.add("pool_size", -1)
        self.push_token(self.token, recipient, self.denomination)
        self.emit("Withdrawal", recipient=recipient)

    def anonymity_set(self) -> int:
        """Unspent notes currently in the pool."""
        return self.storage.get("pool_size", 0)
