"""Common machinery for DeFi protocol contracts."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chain.contract import Contract, external
from ..chain.errors import Revert
from ..chain.types import Address
from ..tokens.erc20 import ERC20

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["DeFiProtocol", "FlashLoanReceiver"]


class DeFiProtocol(Contract):
    """Base class for protocol contracts.

    Adds token-movement helpers that route through the ERC20 contracts so
    every asset flow lands in the transaction trace.
    """

    def token(self, address: Address) -> ERC20:
        return self.chain.contract_of(address, ERC20)

    def pull_token(self, token: Address, owner: Address, amount: int) -> None:
        """Pull ``amount`` of ``token`` from ``owner`` via ``transferFrom``.

        The owner must have approved this contract beforehand, exactly as
        on the real chain.
        """
        self.call(token, "transferFrom", owner, self.address, amount)

    def push_token(self, token: Address, to: Address, amount: int) -> None:
        """Send ``amount`` of ``token`` held by this contract to ``to``."""
        self.call(token, "transfer", to, amount)

    def token_balance(self, token: Address, owner: Address | None = None) -> int:
        return self.token(token).balance_of(owner or self.address)

    def require(self, condition: bool, reason: str) -> None:
        if not condition:
            raise Revert(f"{type(self).__name__}: {reason}")


class FlashLoanReceiver(Contract):
    """Interface expected from flash-loan borrower contracts.

    Providers call back into the borrower mid-transaction:

    - Uniswap pairs call :meth:`uniswapV2Call`;
    - AAVE calls :meth:`executeOperation`;
    - dYdX calls :meth:`callFunction`.

    Subclasses override whichever callbacks they use.
    """

    @external
    def uniswapV2Call(self, msg, sender: Address, amount0: int, amount1: int, data: object) -> None:
        raise Revert("uniswapV2Call not implemented")

    @external
    def executeOperation(self, msg, token: Address, amount: int, fee: int, params: object) -> None:
        raise Revert("executeOperation not implemented")

    @external
    def callFunction(self, msg, sender: Address, data: object) -> None:
        raise Revert("callFunction not implemented")
