"""bZx-style margin trading venue with a DEX price oracle.

Reproduces the two behaviours the first two flpAttacks exploited:

- **margin trading** (bZx-1, Fig. 3): a trader posts a deposit, the venue
  finances a position of ``leverage x deposit`` with *its own funds* and
  executes the position swap on an external AMM — moving that AMM's price
  with the venue's money;
- **oracle-priced lending** (bZx-2): the venue values collateral using a
  Uniswap spot oracle, so inflating the collateral token's spot price lets
  an attacker drain the loan book.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chain.contract import Msg, external
from ..chain.types import Address
from .base import DeFiProtocol
from .oracle import DexSpotOracle
from .uniswap import UniswapV2Pair

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["MarginVenue"]


class MarginVenue(DeFiProtocol):
    """Margin trading + collateralized lending priced by a DEX oracle."""

    APP_NAME = "bZx"
    #: loan-to-value for oracle-priced loans, basis points.
    LTV_BPS = 8_000
    MAX_LEVERAGE = 5

    def __init__(self, chain: "Chain", address: Address, oracle: DexSpotOracle) -> None:
        super().__init__(chain, address)
        self.oracle = oracle

    @external
    def fund(self, msg: Msg, token: Address, amount: int) -> None:
        """Seed the venue's loan book (LPs / scenario setup)."""
        self.pull_token(token, msg.sender, amount)
        self.storage.add(("cash", token), amount)

    # -- margin trading (bZx-1 path) --------------------------------------

    @external
    def open_margin_position(
        self,
        msg: Msg,
        deposit_token: Address,
        deposit_amount: int,
        position_pair: Address,
        leverage: int,
        via: Address | None = None,
    ) -> int:
        """Open a leveraged long on ``position_pair``'s other token.

        Pulls the trader's deposit, then swaps ``leverage * deposit`` of
        the deposit token — financed from venue cash — on the AMM. When
        ``via`` names an aggregator, the swap is routed through it (the
        Kyber hop of paper Fig. 6); the position stays on the venue's
        books, so any loss from a manipulated price is the venue's.
        """
        self.require(1 <= leverage <= self.MAX_LEVERAGE, "bad leverage")
        pair = self.chain.contract_of(position_pair, UniswapV2Pair)
        position_token = pair.other_token(deposit_token)
        self.pull_token(deposit_token, msg.sender, deposit_amount)
        self.storage.add(("cash", deposit_token), deposit_amount)
        trade_amount = deposit_amount * leverage
        cash = self.storage.get(("cash", deposit_token), 0)
        self.require(trade_amount <= cash, "insufficient venue cash")
        self.storage.add(("cash", deposit_token), -trade_amount)
        if via is not None:
            self.call(deposit_token, "approve", via, trade_amount)
            received = self.call(
                via,
                "trade",
                position_pair,
                deposit_token,
                trade_amount,
                position_token,
                self.address,
            )
        else:
            received = pair.get_amount_out(trade_amount, deposit_token)
            self.push_token(deposit_token, position_pair, trade_amount)
            out0, out1 = (received, 0) if position_token == pair.token0 else (0, received)
            self.call(position_pair, "swap", out0, out1, self.address)
        self.storage.add(("position", msg.sender, position_token), received)
        self.storage.add(("cash", position_token), received)
        self.emit(
            "MarginTradeOpened",
            trader=msg.sender,
            depositToken=deposit_token,
            depositAmount=deposit_amount,
            positionToken=position_token,
            positionSize=received,
        )
        return received

    # -- oracle-priced lending (bZx-2 path) -----------------------------------

    @external
    def borrow_against(
        self,
        msg: Msg,
        collateral_token: Address,
        collateral_amount: int,
        borrow_token: Address,
    ) -> int:
        """Lend ``borrow_token`` against collateral valued at the DEX spot.

        The loan size is ``collateral_value * LTV``; because the value
        comes from a manipulable AMM spot price, this is the bZx-2 attack
        surface.
        """
        self.require(collateral_amount > 0, "zero collateral")
        rate = self.oracle.price(collateral_token, borrow_token)
        borrow_amount = int(collateral_amount * rate * self.LTV_BPS / 10_000)
        cash = self.storage.get(("cash", borrow_token), 0)
        self.require(0 < borrow_amount <= cash, "insufficient venue cash")
        self.pull_token(collateral_token, msg.sender, collateral_amount)
        self.storage.add(("cash", collateral_token), collateral_amount)
        self.storage.add(("cash", borrow_token), -borrow_amount)
        self.storage.add(("debt", msg.sender, borrow_token), borrow_amount)
        self.push_token(borrow_token, msg.sender, borrow_amount)
        self.emit(
            "BorrowAgainst",
            borrower=msg.sender,
            collateralToken=collateral_token,
            collateralAmount=collateral_amount,
            borrowToken=borrow_token,
            borrowAmount=borrow_amount,
        )
        return borrow_amount

    # -- oracle-priced swaps (CheeseBank/AutoShark/Saddle-style venues) --------

    @external
    def oracle_swap(self, msg: Msg, token_in: Address, amount_in: int, token_out: Address) -> int:
        """Trade against the venue's treasury at the oracle spot price.

        Many exploited venues (synth platforms, single-sided vault exits,
        bank-style redemptions) effectively sell treasury assets at an
        on-chain oracle rate with no slippage — which makes them the
        cheap-buy / dear-sell endpoint of SBS and KRP attacks once the
        oracle pool is manipulated.
        """
        self.require(amount_in > 0, "zero amount")
        rate = self.oracle.price(token_in, token_out)
        amount_out = int(amount_in * rate)
        cash = self.storage.get(("cash", token_out), 0)
        self.require(0 < amount_out <= cash, "insufficient venue cash")
        self.pull_token(token_in, msg.sender, amount_in)
        self.storage.add(("cash", token_in), amount_in)
        self.storage.add(("cash", token_out), -amount_out)
        self.push_token(token_out, msg.sender, amount_out)
        return amount_out

    # -- views ---------------------------------------------------------------

    def cash_of(self, token: Address) -> int:
        return self.storage.get(("cash", token), 0)

    def position_of(self, trader: Address, token: Address) -> int:
        return self.storage.get(("position", trader, token), 0)
