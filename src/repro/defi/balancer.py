"""Balancer-style weighted constant-mean pool.

Balancer pools hold N tokens with arbitrary weights and price trades with
the constant weighted-product invariant. Two details matter for the
reproduction of the June 2020 Balancer attack:

- the pool prices against its *internal balance records*, not the actual
  token balances, and

- ``gulp`` resyncs a token's record to the actual balance.

With a deflationary token (1% burn on transfer) an attacker can swap in a
loop so the pool's recorded balance decays to dust, then buy the other
assets at an absurd rate — the ``6.5 * 10^28 %`` volatility row of the
paper's Table I.

Weighted-power math uses floats; amounts stay integers at the boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..chain.contract import Msg, external
from ..chain.errors import InsufficientLiquidity, Revert
from ..chain.types import Address
from ..tokens.erc20 import ERC20

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["BalancerPool"]


class BalancerPool(ERC20):
    """An N-token weighted pool; the pool token (BPT) is the contract."""

    APP_NAME = "Balancer"
    #: default swap fee: 0.3% expressed in parts per million.
    FEE_PPM = 3_000

    def __init__(
        self,
        chain: "Chain",
        address: Address,
        tokens: Sequence[Address],
        weights: Sequence[float],
        lp_symbol: str = "BPT",
        fee_ppm: int | None = None,
    ) -> None:
        if len(tokens) < 2 or len(tokens) != len(weights):
            raise ValueError("need >=2 tokens with matching weights")
        if len(set(tokens)) != len(tokens):
            raise ValueError("duplicate pool token")
        super().__init__(chain, address, symbol=lp_symbol, decimals=18)
        self.tokens = tuple(tokens)
        total_weight = float(sum(weights))
        self.weights = {t: w / total_weight for t, w in zip(tokens, weights)}
        self.fee_ppm = self.FEE_PPM if fee_ppm is None else fee_ppm

    # -- views ---------------------------------------------------------------

    def record_balance(self, token: Address) -> int:
        """The pool's *internal* balance record for ``token``."""
        self._require_bound(token)
        return self.storage.get(("record", token), 0)

    def actual_balance(self, token: Address) -> int:
        return self.chain.contract_of(token, ERC20).balance_of(self.address)

    def spot_price(self, base: Address, quote: Address) -> float:
        """Price of ``base`` in ``quote`` per the weighted-mean formula."""
        balance_base = self.record_balance(base)
        balance_quote = self.record_balance(quote)
        if balance_base == 0 or balance_quote == 0:
            raise InsufficientLiquidity("empty balance record")
        ratio_quote = balance_quote / self.weights[quote]
        ratio_base = balance_base / self.weights[base]
        return ratio_quote / ratio_base

    def calc_out_given_in(self, token_in: Address, amount_in: int, token_out: Address) -> int:
        """Balancer's ``calcOutGivenIn`` (swap fee applied to the input)."""
        balance_in = self.record_balance(token_in)
        balance_out = self.record_balance(token_out)
        if balance_in <= 0 or balance_out <= 0:
            raise InsufficientLiquidity("no liquidity")
        weight_ratio = self.weights[token_in] / self.weights[token_out]
        adjusted_in = amount_in * (1 - self.fee_ppm / 1e6)
        y = balance_in / (balance_in + adjusted_in)
        out = balance_out * (1 - y**weight_ratio)
        return int(out)

    # -- trading ----------------------------------------------------------------

    @external
    def swapExactAmountIn(
        self,
        msg: Msg,
        token_in: Address,
        amount_in: int,
        token_out: Address,
        min_amount_out: int = 0,
    ) -> int:
        """Swap using internal records; pulls input from the caller."""
        self._require_bound(token_in)
        self._require_bound(token_out)
        amount_out = self.calc_out_given_in(token_in, amount_in, token_out)
        if amount_out < min_amount_out:
            raise Revert("limit out")
        if amount_out >= self.record_balance(token_out):
            raise InsufficientLiquidity("out exceeds record")
        self.call(token_in, "transferFrom", msg.sender, self.address, amount_in)
        # Balancer credits the *requested* input amount to its record even if a
        # fee-on-transfer token delivered less: the core bug behind the attack.
        self.storage.add(("record", token_in), amount_in)
        self.storage.add(("record", token_out), -amount_out)
        self.call(token_out, "transfer", msg.sender, amount_out)
        self.emit_trade(
            "LOG_SWAP",
            caller=msg.sender,
            tokenIn=token_in,
            tokenOut=token_out,
            tokenAmountIn=amount_in,
            tokenAmountOut=amount_out,
        )
        return amount_out

    @external
    def gulp(self, msg: Msg, token: Address) -> None:
        """Resync one token's record to the actual balance."""
        self._require_bound(token)
        self.storage.set(("record", token), self.actual_balance(token))

    # -- liquidity ---------------------------------------------------------------

    @external
    def joinPool(self, msg: Msg, pool_amount_out: int) -> None:
        """Proportional all-asset join minting ``pool_amount_out`` BPT."""
        total = self.total_supply()
        if total == 0:
            raise Revert("pool not seeded; use seed()")
        ratio = pool_amount_out / total
        for token in self.tokens:
            amount = int(self.record_balance(token) * ratio) + 1
            self.call(token, "transferFrom", msg.sender, self.address, amount)
            self.storage.add(("record", token), amount)
        super().mint(msg.sender, pool_amount_out)
        self.emit_trade("LOG_JOIN", caller=msg.sender, poolAmountOut=pool_amount_out)

    @external
    def exitPool(self, msg: Msg, pool_amount_in: int) -> None:
        """Proportional all-asset exit burning ``pool_amount_in`` BPT."""
        total = self.total_supply()
        if total <= 0 or pool_amount_in <= 0:
            raise InsufficientLiquidity("nothing to exit")
        ratio = pool_amount_in / total
        super().burn(msg.sender, pool_amount_in)
        for token in self.tokens:
            amount = int(self.record_balance(token) * ratio)
            self.storage.add(("record", token), -amount)
            self.call(token, "transfer", msg.sender, amount)
        self.emit_trade("LOG_EXIT", caller=msg.sender, poolAmountIn=pool_amount_in)

    def seed(self, provider: Address, amounts: dict[Address, int], initial_bpt: int) -> None:
        """Bootstrap records and supply from ``provider`` (setup helper).

        Requires prior approvals, like any pool funding.
        """
        if self.total_supply() != 0:
            raise Revert("already seeded")
        for token, amount in amounts.items():
            self._require_bound(token)
            self.call(token, "transferFrom", provider, self.address, amount)
            self.storage.set(("record", token), self.actual_balance(token))
        super().mint(provider, initial_bpt)

    # -- internals ---------------------------------------------------------------

    def _require_bound(self, token: Address) -> None:
        if token not in self.weights:
            raise Revert(f"token {token.short} not bound")
