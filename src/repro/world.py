"""DeFi world builder: one-stop construction of simulated deployments.

Study scenarios (the 22 real-world attack replays) and the wild-scan
workload generator both need the same boilerplate: a chain, a WETH
contract, labelled protocol deployments, funded liquidity pools and flash
loan providers. :class:`DeFiWorld` packages that with an Ethereum profile
and a BNB Smart Chain profile (PancakeSwap/Venus naming), mirroring the
fork relationship the paper leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .chain import Chain, ETH, Address
from .defi import (
    AaveLendingPool,
    BalancerPool,
    DexSpotOracle,
    LendingMarket,
    MarginVenue,
    SoloMargin,
    StableSwapPool,
    TradeAggregator,
    UniswapV2Factory,
    UniswapV2Pair,
    UniswapV2Router,
    Vault,
)
from .tokens import DeflationaryERC20, ERC20, TokenRegistry, WETH

__all__ = ["ChainProfile", "DeFiWorld", "ETHEREUM_PROFILE", "BSC_PROFILE"]


@dataclass(frozen=True, slots=True)
class ChainProfile:
    """Naming profile for a chain and its canonical protocol forks."""

    chain_name: str
    native_symbol: str
    wrapped_symbol: str
    dex_app: str
    lending_app: str


ETHEREUM_PROFILE = ChainProfile(
    chain_name="ethereum",
    native_symbol="ETH",
    wrapped_symbol="WETH",
    dex_app="Uniswap",
    lending_app="Compound",
)

BSC_PROFILE = ChainProfile(
    chain_name="bsc",
    native_symbol="BNB",
    wrapped_symbol="WBNB",
    dex_app="PancakeSwap",
    lending_app="Venus",
)

_WHALE_ETH = 100_000_000 * ETH


@dataclass
class DeFiWorld:
    """A chain plus the standard cast of protocols, ready for scenarios."""

    profile: ChainProfile = ETHEREUM_PROFILE
    chain: Chain = field(init=False)
    registry: TokenRegistry = field(init=False)
    whale: Address = field(init=False)
    weth: WETH = field(init=False)

    def __post_init__(self) -> None:
        self.chain = Chain(self.profile.chain_name)
        self.registry = TokenRegistry(native_symbol=self.profile.native_symbol)
        self.whale = self.chain.create_eoa("whale")
        self.chain.faucet(self.whale, _WHALE_ETH)
        weth_deployer = self.chain.create_eoa("weth-deployer")
        self.weth = self.chain.deploy(weth_deployer, WETH, label="Wrapped Ether")
        self.weth.symbol = self.profile.wrapped_symbol
        self.registry.register(self.weth)
        self.chain.transact(self.whale, self.weth.address, "deposit", value=_WHALE_ETH // 2)
        self._factories: dict[str, UniswapV2Factory] = {}
        self._routers: dict[str, UniswapV2Router] = {}
        self._deployers: dict[str, Address] = {}
        self._aave: AaveLendingPool | None = None
        self._dydx: SoloMargin | None = None

    # ------------------------------------------------------------------
    # deployers & labels
    # ------------------------------------------------------------------

    def deployer_of(self, app: str) -> Address:
        """The labelled root EOA of an application (created on demand)."""
        if app not in self._deployers:
            self._deployers[app] = self.chain.create_eoa(
                f"{app}-deployer", label=f"{app}: Deployer 1"
            )
        return self._deployers[app]

    # ------------------------------------------------------------------
    # tokens
    # ------------------------------------------------------------------

    def new_token(
        self,
        symbol: str,
        decimals: int = 18,
        supply_to_whale: int | None = None,
        app: str | None = None,
    ) -> ERC20:
        """Deploy and register a token; optionally mint whale supply."""
        deployer = self.deployer_of(app) if app else self.chain.create_eoa(f"{symbol}-issuer")
        label = f"{app}: {symbol} Token" if app else None
        token = self.registry.deploy(self.chain, deployer, symbol, decimals, label=label)
        if supply_to_whale is None:
            supply_to_whale = 10_000_000_000 * token.unit
        if supply_to_whale:
            token.mint(self.whale, supply_to_whale)
        return token

    def deflationary_token(
        self, symbol: str, fee_bps: int = 100, decimals: int = 18, supply_to_whale: int | None = None
    ) -> DeflationaryERC20:
        deployer = self.chain.create_eoa(f"{symbol}-issuer")
        token = self.chain.deploy(deployer, DeflationaryERC20, symbol, decimals, fee_bps, hint=symbol)
        self.registry.register(token)
        if supply_to_whale is None:
            supply_to_whale = 10_000_000_000 * token.unit
        if supply_to_whale:
            token.mint(self.whale, supply_to_whale)
        return token

    def token(self, symbol: str) -> ERC20:
        return self.registry.by_symbol(symbol)

    # ------------------------------------------------------------------
    # Uniswap-style DEXs
    # ------------------------------------------------------------------

    def dex_factory(self, app: str | None = None) -> UniswapV2Factory:
        app = app or self.profile.dex_app
        if app not in self._factories:
            deployer = self.deployer_of(app)
            factory = self.chain.deploy(
                deployer, UniswapV2Factory, label=f"{app}: Factory Contract"
            )
            factory.app_name = app
            self._factories[app] = factory
        return self._factories[app]

    def dex_router(self, app: str | None = None) -> UniswapV2Router:
        app = app or self.profile.dex_app
        if app not in self._routers:
            deployer = self.deployer_of(app)
            router = self.chain.deploy(deployer, UniswapV2Router, label=f"{app}: Router")
            router.app_name = app
            self._routers[app] = router
        return self._routers[app]

    def dex_pair(
        self,
        token_a: ERC20,
        token_b: ERC20,
        reserve_a: int,
        reserve_b: int,
        app: str | None = None,
    ) -> UniswapV2Pair:
        """Create and seed a pair with the given reserves from the whale."""
        factory = self.dex_factory(app)
        router = self.dex_router(app)
        pair = factory.create_pair(token_a.address, token_b.address)
        self.approve(self.whale, token_a, router.address)
        self.approve(self.whale, token_b, router.address)
        amount0, amount1 = (
            (reserve_a, reserve_b)
            if pair.token0 == token_a.address
            else (reserve_b, reserve_a)
        )
        self.chain.transact(
            self.whale, router.address, "addLiquidity", pair.address, amount0, amount1
        )
        return pair

    # ------------------------------------------------------------------
    # other venue types
    # ------------------------------------------------------------------

    def balancer_pool(
        self,
        deposits: Mapping[ERC20, int],
        weights: Sequence[float] | None = None,
        app: str = "Balancer",
        lp_symbol: str = "BPT",
    ) -> BalancerPool:
        tokens = list(deposits)
        weights = list(weights) if weights is not None else [1.0] * len(tokens)
        deployer = self.deployer_of(app)
        pool = self.chain.deploy(
            deployer,
            BalancerPool,
            tuple(t.address for t in tokens),
            tuple(weights),
            lp_symbol,
            label=f"{app}: {lp_symbol} Pool",
        )
        pool.app_name = app
        self.registry.register(pool)
        for token in tokens:
            self.approve(self.whale, token, pool.address)
        pool.seed(self.whale, {t.address: amt for t, amt in deposits.items()}, 100 * ETH)
        return pool

    def curve_pool(
        self,
        deposits: Mapping[ERC20, int],
        amp: int = 100,
        app: str = "Curve",
        lp_symbol: str = "crvLP",
    ) -> StableSwapPool:
        coins = list(deposits)
        deployer = self.deployer_of(app)
        pool = self.chain.deploy(
            deployer,
            StableSwapPool,
            tuple(c.address for c in coins),
            amp,
            lp_symbol,
            label=f"{app}: {lp_symbol} Pool",
        )
        pool.app_name = app
        self.registry.register(pool)
        for coin in coins:
            self.approve(self.whale, coin, pool.address)
        self.chain.transact(
            self.whale, pool.address, "add_liquidity", [deposits[c] for c in coins]
        )
        return pool

    def vault(
        self,
        underlying: ERC20,
        share_symbol: str,
        app: str = "Harvest",
        value_per_underlying: Callable[[], float] | None = None,
        seed_amount: int | None = None,
        deviation_guard_bps: int | None = None,
    ) -> Vault:
        deployer = self.deployer_of(app)
        vault = self.chain.deploy(
            deployer,
            Vault,
            underlying.address,
            share_symbol,
            value_per_underlying,
            deviation_guard_bps,
            label=f"{app}: {share_symbol} Vault",
        )
        vault.app_name = app
        self.registry.register(vault)
        if seed_amount is None:
            seed_amount = 100_000_000 * underlying.unit
        if seed_amount:
            self.approve(self.whale, underlying, vault.address)
            self.chain.transact(self.whale, vault.address, "deposit", seed_amount)
        return vault

    def aggregator(self, app: str = "Kyber", fee_bps: int = 0) -> TradeAggregator:
        deployer = self.deployer_of(app)
        agg = self.chain.deploy(deployer, TradeAggregator, fee_bps, label=f"{app}: Proxy")
        agg.app_name = app
        return agg

    def lending_market(
        self,
        prices: Mapping[Address, float] | Callable[[Address], float],
        funding: Mapping[ERC20, int] | None = None,
        app: str | None = None,
    ) -> LendingMarket:
        app = app or self.profile.lending_app
        price_of = prices if callable(prices) else (lambda t: prices[t])
        deployer = self.deployer_of(app)
        market = self.chain.deploy(
            deployer, LendingMarket, price_of, label=f"{app}: Comptroller"
        )
        market.app_name = app
        for token, amount in (funding or {}).items():
            self.approve(self.whale, token, market.address)
            self.chain.transact(self.whale, market.address, "supply", token.address, amount)
        return market

    def margin_venue(
        self,
        oracle_pools: Sequence[UniswapV2Pair],
        funding: Mapping[ERC20, int] | None = None,
        app: str = "bZx",
    ) -> MarginVenue:
        deployer = self.deployer_of(app)
        venue = self.chain.deploy(
            deployer, MarginVenue, DexSpotOracle(list(oracle_pools)), label=f"{app}: Protocol"
        )
        venue.app_name = app
        for token, amount in (funding or {}).items():
            self.approve(self.whale, token, venue.address)
            self.chain.transact(self.whale, venue.address, "fund", token.address, amount)
        return venue

    # ------------------------------------------------------------------
    # flash loan providers
    # ------------------------------------------------------------------

    def aave(self, funding: Mapping[ERC20, int] | None = None) -> AaveLendingPool:
        if self._aave is None:
            deployer = self.deployer_of("AAVE")
            self._aave = self.chain.deploy(
                deployer, AaveLendingPool, label="AAVE: Lending Pool"
            )
        for token, amount in (funding or {}).items():
            self.approve(self.whale, token, self._aave.address)
            self.chain.transact(
                self.whale, self._aave.address, "deposit", token.address, amount
            )
        return self._aave

    def dydx(self, funding: Mapping[ERC20, int] | None = None) -> SoloMargin:
        if self._dydx is None:
            deployer = self.deployer_of("dYdX")
            self._dydx = self.chain.deploy(deployer, SoloMargin, label="dYdX: Solo Margin")
        for token, amount in (funding or {}).items():
            self.approve(self.whale, token, self._dydx.address)
            self.chain.transact(
                self.whale, self._dydx.address, "fund", token.address, amount
            )
        return self._dydx

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def approve(self, owner: Address, token: ERC20, spender: Address) -> None:
        self.chain.transact(owner, token.address, "approve", spender, 2**200)

    def fund_token(self, recipient: Address, token: ERC20, amount: int) -> None:
        """Give an account tokens directly (genesis-style allocation)."""
        token.mint(recipient, amount)

    def fund_weth(self, recipient: Address, amount: int) -> None:
        """Wrap fresh native asset into WETH for ``recipient``."""
        self.chain.faucet(recipient, amount)
        self.chain.transact(recipient, self.weth.address, "deposit", value=amount)

    def create_attacker(self, hint: str = "attacker") -> Address:
        return self.chain.create_eoa(hint)

    def simplifier_config(self, **overrides) -> "SimplifierConfig":
        """A simplifier config wired to this world's WETH token."""
        from .leishen.simplify import SimplifierConfig

        return SimplifierConfig(
            weth_tokens=frozenset({self.weth.address}), **overrides
        )

    def detector(self, tag_snapshot: dict | None = None, **config_overrides) -> "LeiShen":
        """A LeiShen instance bound to this world's chain and WETH.

        ``tag_snapshot`` warm-starts the tagger's label sync from a
        snapshot captured off an identically built chain (see
        :meth:`~repro.leishen.tagging.AccountTagger.label_sync_snapshot`).
        """
        from .leishen.detector import LeiShen, LeiShenConfig

        return LeiShen(
            self.chain,
            LeiShenConfig(simplifier=self.simplifier_config(), **config_overrides),
            tag_snapshot=tag_snapshot,
        )
