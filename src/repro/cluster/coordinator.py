"""The cluster coordinator: shard queue, fault handling, deterministic merge.

The coordinator owns the canonical partition of one wild scan. It never
executes transactions itself (unless every worker is gone and local
fallback is enabled); it hands out pure-data shard descriptors
``(seed, scale, shard_index, shard_count)`` to whichever workers connect,
and merges the shard results they stream back::

        workers (N, anywhere)                coordinator (one)
    ┌─────────────────────────┐      ┌────────────────────────────────┐
    │ hello ──────────────────┼──────▶ register, welcome(config)      │
    │ ready ──────────────────┼──────▶ pop shard ──▶ assign(descriptor)│
    │ build_shard_context     │      │   pending ◀── requeue on loss, │
    │ execute/detect/finalize │      │   deque       timeout or error │
    │ result(shard, payload) ─┼──────▶ completed[shard] (first wins)  │
    │ heartbeat (always) ─────┼──────▶ last_seen[worker]              │
    └─────────────────────────┘      │ merge by shard index ──▶ result │
                                     └────────────────────────────────┘

Fault model (every transition keeps the merge deterministic):

- **lost worker** — its connection drops: every shard it was running is
  requeued and the worker earns a strike;
- **slow worker** — no heartbeat for ``heartbeat_timeout``: its shards
  are requeued *speculatively*; the connection stays open, so if the
  straggler eventually answers, whichever completion lands first wins
  and the other is suppressed (``duplicates_suppressed``);
- **failing shard** — a worker reports ``shard-error``: requeue + strike;
  a shard assigned more than ``max_shard_attempts`` times aborts the run
  (a poisoned shard must fail loudly, not spin forever);
- **failing worker** — ``max_worker_strikes`` strikes exclude the worker:
  it is drained on its next request and never assigned again — until an
  elastic pool (:mod:`repro.cluster.autoscale`) grants it *probation*
  after a cooldown: one trial shard, success clears the strikes, any
  further fault re-excludes immediately;
- **no workers left** — with ``local_fallback`` the coordinator runs the
  remaining shards in-process (the run *completes*, merely slower),
  otherwise it raises :class:`ClusterError`. While an
  :class:`~repro.cluster.autoscale.ElasticPool` is attached the fallback
  is deferred: the pool can still spawn or re-admit capacity.

Liveness: while a worker is parked waiting for work the coordinator
park-pings it every heartbeat interval, so a worker can bound its reads
and detect a silently-dead coordinator host; the monitor loop waits on
the shared condition (never a bare ``sleep``), so ``shutdown()`` wakes
it immediately even with very large heartbeat timeouts.

Because ``completed`` maps shard index → exactly one result and the merge
(:func:`repro.engine.scan.merge_shard_results`) orders by shard index,
the merged ``WildScanResult`` is byte-identical to ``ScanEngine.run()``
for the same ``(seed, scale, shards)`` no matter how many workers served
the run, which of them died, or in what order results arrived.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..engine.plan import build_full_schedule
from ..engine.scan import context_snapshot_for, merge_shard_results, run_shard
from ..engine.wire import config_to_wire, shard_result_from_wire, shard_result_to_wire
from .protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)

__all__ = ["CapacitySnapshot", "ClusterError", "ClusterStats", "Coordinator"]

#: default bound on assignments per shard before the run aborts.
DEFAULT_MAX_SHARD_ATTEMPTS = 5

#: default strikes (losses / shard errors) before a worker is excluded.
DEFAULT_MAX_WORKER_STRIKES = 3

#: default seconds without a heartbeat before a worker's shards requeue.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0


class ClusterError(RuntimeError):
    """The cluster run cannot complete (poisoned shard, no workers, ...)."""


@dataclass(slots=True)
class ClusterStats:
    """Fault/requeue counters for one coordinated run (bench-visible)."""

    workers_seen: int = 0
    assignments: int = 0
    requeues: int = 0
    heartbeat_requeues: int = 0
    worker_losses: int = 0
    shard_errors: int = 0
    duplicates_suppressed: int = 0
    workers_excluded: int = 0
    local_fallback_shards: int = 0
    #: elastic-pool scaling events (repro.cluster.autoscale)
    workers_spawned: int = 0
    workers_drained: int = 0
    workers_readmitted: int = 0
    probation_passes: int = 0
    probation_failures: int = 0
    #: shards loaded from a run ledger instead of executed (resume).
    resumed_shards: int = 0
    #: merged per-stage profile payload after a ``config.profile`` run
    #: (``None`` otherwise — which is what bench artifacts record, since
    #: benches never profile; observability only, never result identity).
    profile: dict | None = None

    def to_dict(self) -> dict:
        return {
            "workers_seen": self.workers_seen,
            "assignments": self.assignments,
            "requeues": self.requeues,
            "heartbeat_requeues": self.heartbeat_requeues,
            "worker_losses": self.worker_losses,
            "shard_errors": self.shard_errors,
            "duplicates_suppressed": self.duplicates_suppressed,
            "workers_excluded": self.workers_excluded,
            "local_fallback_shards": self.local_fallback_shards,
            "workers_spawned": self.workers_spawned,
            "workers_drained": self.workers_drained,
            "workers_readmitted": self.workers_readmitted,
            "probation_passes": self.probation_passes,
            "probation_failures": self.probation_failures,
            "resumed_shards": self.resumed_shards,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterStats":
        """Rebuild stats from :meth:`to_dict` output (bench artifacts)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ClusterStats fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True, slots=True)
class CapacitySnapshot:
    """Point-in-time queue-depth/capacity view for autoscaling policies.

    ``pending + running`` (:attr:`demand`) against ``len(live_workers)``
    is what :class:`~repro.cluster.autoscale.ElasticPool` scales on.
    """

    shard_count: int
    completed: int
    #: incomplete shards sitting in the queue, waiting for a worker.
    pending: int
    #: shards currently assigned to a connected worker.
    running: int
    #: connected, assignable workers (not excluded, not retiring).
    live_workers: tuple[str, ...]
    #: live workers with no shard in flight.
    idle_workers: tuple[str, ...]
    #: connected workers that were asked to drain and will disconnect.
    retiring_workers: tuple[str, ...]
    #: excluded worker name -> seconds since the exclusion.
    excluded_ages: dict[str, float]
    stopping: bool
    failed: bool

    @property
    def outstanding(self) -> int:
        return self.shard_count - self.completed

    @property
    def demand(self) -> int:
        """Shards that still need a worker: ``pending + running``."""
        return self.pending + self.running

    @property
    def finished(self) -> bool:
        return self.failed or self.completed == self.shard_count

    def to_dict(self) -> dict:
        """JSON-safe view (scaling-policy logs, bench artifacts)."""
        return {
            "shard_count": self.shard_count,
            "completed": self.completed,
            "pending": self.pending,
            "running": self.running,
            "live_workers": list(self.live_workers),
            "idle_workers": list(self.idle_workers),
            "retiring_workers": list(self.retiring_workers),
            "excluded_ages": dict(self.excluded_ages),
            "stopping": self.stopping,
            "failed": self.failed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CapacitySnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown CapacitySnapshot fields: {sorted(unknown)}")
        missing = known - set(payload)
        if missing:
            raise ValueError(f"missing CapacitySnapshot fields: {sorted(missing)}")
        payload = dict(payload)
        for key in ("live_workers", "idle_workers", "retiring_workers"):
            payload[key] = tuple(payload[key])
        return cls(**payload)


@dataclass(slots=True)
class _WorkerState:
    """Coordinator-side view of one worker identity (stable across
    reconnects: strikes and exclusion follow the name, not the socket)."""

    name: str
    conn: socket.socket | None = None
    last_seen: float = 0.0
    #: shards the coordinator is currently counting on this worker for.
    shards: set[int] = field(default_factory=set)
    strikes: int = 0
    excluded: bool = False
    completed: int = 0
    #: when the exclusion happened (monotonic), for probation cooldowns.
    excluded_at: float = 0.0
    #: re-admitted on trial: one clean shard clears the strikes, any
    #: fault re-excludes immediately.
    probation: bool = False
    #: asked to drain (elastic scale-down); cleared on reconnect.
    retiring: bool = False


class Coordinator:
    """Serves one wild scan to a fleet of cluster workers.

    Usage (see also :func:`repro.cluster.local.run_cluster_scan` for the
    single-call convenience wrapper)::

        with Coordinator(config, port=0) as coordinator:
            host, port = coordinator.address     # workers connect here
            result = coordinator.run()           # blocks until merged
    """

    def __init__(
        self,
        config,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        heartbeat_interval: float | None = None,
        max_shard_attempts: int = DEFAULT_MAX_SHARD_ATTEMPTS,
        max_worker_strikes: int = DEFAULT_MAX_WORKER_STRIKES,
        local_fallback: bool = True,
        ledger=None,
        server_socket: socket.socket | None = None,
        failover_addresses=None,
    ) -> None:
        if heartbeat_timeout <= 0:
            raise ValueError(f"heartbeat_timeout must be > 0, got {heartbeat_timeout}")
        if max_shard_attempts < 1:
            raise ValueError(
                f"max_shard_attempts must be >= 1, got {max_shard_attempts}"
            )
        if max_worker_strikes < 1:
            raise ValueError(
                f"max_worker_strikes must be >= 1, got {max_worker_strikes}"
            )
        self.config = config
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, heartbeat_timeout / 4)
        )
        self.max_shard_attempts = max_shard_attempts
        self.max_worker_strikes = max_worker_strikes
        self.local_fallback = local_fallback
        self.stats = ClusterStats()

        _, self.shard_count = build_full_schedule(config)

        #: the run ledger (``None`` for unjournaled runs): every completed
        #: shard payload is journaled, and shards already in the journal
        #: are never queued — a SIGKILLed coordinator resumes by pointing
        #: a new one at the same ledger path.
        self.ledger = None
        if ledger is not None:
            # lazy import: repro.runtime imports the engine at load time,
            # so the import-time dependency must stay one-directional.
            from ..runtime.ledger import ensure_ledger

            self.ledger = ensure_ledger(ledger, config, self.shard_count)

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._completed: dict[int, dict] = {}
        #: per-shard profile payloads reported by workers/fallback when
        #: ``config.profile``; merged into :attr:`profile` after ``run``.
        #: Kept out of ``_completed`` (and therefore the ledger journal):
        #: profiles are observability, never part of result identity.
        self._profiles: dict[int, dict] = {}
        #: merged per-stage profile after a ``config.profile`` run
        #: (``None`` otherwise; ledger-resumed shards carry no profile,
        #: which ``counters["shards_profiled"]`` makes visible).
        self.profile = None
        if self.ledger is not None:
            # Seed completion from the journal (possibly another
            # coordinator's — the hot-standby adoption path). Shards
            # folded into a compacted snapshot prefix have no individual
            # payload; the merge always comes from ``ledger.merge()``
            # when a ledger is attached, so ``None`` placeholders are
            # only ever used for membership.
            payloads = self.ledger.completed_payloads
            for shard in self.ledger.completed_shards():
                self._completed[shard] = payloads.get(shard)
            self.stats.resumed_shards = len(self._completed)
        self._pending: deque[int] = deque(
            index for index in range(self.shard_count) if index not in self._completed
        )
        self._attempts: dict[int, int] = {i: 0 for i in range(self.shard_count)}
        self._workers: dict[str, _WorkerState] = {}
        self._failure: BaseException | None = None
        self._stopping = False
        self._threads: list[threading.Thread] = []
        self._pool = None  # attached ElasticPool, if any

        #: standby coordinator addresses broadcast to workers in the
        #: welcome, so a fleet pointed at the primary alone still learns
        #: where to reconnect if the primary dies (protocol v5).
        self.failover_addresses: list[tuple[str, int]] = [
            (str(a), int(p)) for a, p in (failover_addresses or [])
        ]
        if server_socket is not None:
            # Adopt a pre-bound listening socket: the hot-standby bound
            # and advertised this address while the primary was alive,
            # so workers' connect lists stay valid across adoption.
            self._server = server_socket
        else:
            self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._server.bind((host, port))
            self._server.listen(16)
        self._server.settimeout(0.2)
        self.address: tuple[str, int] = self._server.getsockname()[:2]
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def start(self) -> None:
        """Start accepting workers (idempotent)."""
        if self._started:
            return
        self._started = True
        for target, name in (
            (self._accept_loop, "cluster-accept"),
            (self._monitor_loop, "cluster-monitor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def shutdown(self) -> None:
        """Graceful drain: stop assigning, wake waiters, close sockets."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        with self._lock:
            conns = [w.conn for w in self._workers.values() if w.conn is not None]
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        try:
            self._server.close()
        except OSError:
            pass

    # -- the run ---------------------------------------------------------

    def run(self, timeout: float | None = None):
        """Block until every shard is merged; return the ``WildScanResult``.

        ``timeout`` bounds the wait: on expiry the remaining shards run
        in-process when ``local_fallback`` is enabled, otherwise
        :class:`ClusterError` is raised. The same fallback fires early if
        every worker that ever connected is gone or excluded.
        """
        self.start()
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            with self._cond:
                while True:
                    if self._failure is not None:
                        raise self._failure
                    if len(self._completed) == self.shard_count:
                        break
                    if self._stopping:
                        raise ClusterError("coordinator shut down mid-run")
                    if self._no_capacity_locked():
                        self._run_fallback_locked("no workers left")
                        continue
                    if deadline is not None and time.monotonic() >= deadline:
                        self._run_fallback_locked(f"timeout after {timeout}s")
                        continue
                    self._cond.wait(0.1)
                if self.ledger is None:
                    outcomes = [
                        shard_result_from_wire(self._completed[index])
                        for index in range(self.shard_count)
                    ]
                else:
                    outcomes = None
        finally:
            self.shutdown()
        if getattr(self.config, "profile", False):
            from ..runtime.profile import merge_profiles

            with self._lock:
                self.profile = merge_profiles(
                    [self._profiles[i] for i in sorted(self._profiles)]
                )
                self.stats.profile = self.profile
        if outcomes is None:
            # journaled run: the merge decodes from the ledger, so a
            # resumed run and an uninterrupted one produce the identical
            # result from the identical bytes.
            return self.ledger.merge()
        return merge_shard_results(self.config, outcomes)

    def _no_capacity_locked(self) -> bool:
        """True when work remains but no worker can ever pick it up."""
        pool = self._pool
        if pool is not None and pool.active:
            return False  # an elastic pool can still spawn or re-admit
        if not self._workers:
            return False  # nobody connected yet; keep waiting
        for worker in self._workers.values():
            if worker.conn is not None and not worker.excluded:
                return False
        return True

    def _run_fallback_locked(self, reason: str) -> None:
        """Run every not-yet-completed shard in-process (or abort)."""
        if not self.local_fallback:
            raise ClusterError(f"cluster run cannot complete: {reason}")
        remaining = [
            index for index in range(self.shard_count) if index not in self._completed
        ]
        # Drop the lock while executing: handler threads must stay able
        # to deliver results (delivered ones are then skipped here).
        self._cond.release()
        try:
            parts = self._schedule_parts()
            for index in remaining:
                with self._lock:
                    if index in self._completed:
                        continue
                outcome = run_shard(
                    (self.config, index, self.shard_count, parts[index])
                )
                with self._cond:
                    if index in self._completed:
                        self.stats.duplicates_suppressed += 1
                    else:
                        payload = shard_result_to_wire(outcome)
                        self._completed[index] = payload
                        self.stats.local_fallback_shards += 1
                        self._journal_locked(index, payload)
                        if outcome.profile is not None:
                            self._profiles[index] = outcome.profile
                    self._cond.notify_all()
        finally:
            self._cond.acquire()

    def _schedule_parts(self) -> list[list]:
        from ..engine.plan import shard_schedule

        tasks, _ = build_full_schedule(self.config)
        return shard_schedule(tasks, self.shard_count)

    # -- elastic capacity & admission (repro.cluster.autoscale) ----------

    def attach_pool(self, pool) -> None:
        """Register an elastic pool: defers no-capacity fallback to it."""
        with self._cond:
            self._pool = pool
            self._cond.notify_all()

    def detach_pool(self, pool) -> None:
        with self._cond:
            if self._pool is pool:
                self._pool = None
            self._cond.notify_all()

    def queue_depth(self) -> int:
        """Shards that still need a worker: ``pending + running``."""
        return self.capacity_snapshot().demand

    def capacity_snapshot(self) -> CapacitySnapshot:
        """Consistent queue/worker view for scaling decisions."""
        with self._lock:
            now = time.monotonic()
            pending = sum(
                1 for shard in set(self._pending) if shard not in self._completed
            )
            live: list[str] = []
            idle: list[str] = []
            retiring: list[str] = []
            excluded: dict[str, float] = {}
            running = 0
            for worker in self._workers.values():
                if worker.excluded:
                    excluded[worker.name] = now - worker.excluded_at
                    continue
                if worker.conn is None:
                    continue
                running += len(worker.shards)
                if worker.retiring:
                    retiring.append(worker.name)
                    continue
                live.append(worker.name)
                if not worker.shards:
                    idle.append(worker.name)
            return CapacitySnapshot(
                shard_count=self.shard_count,
                completed=len(self._completed),
                pending=pending,
                running=running,
                live_workers=tuple(live),
                idle_workers=tuple(idle),
                retiring_workers=tuple(retiring),
                excluded_ages=excluded,
                stopping=self._stopping,
                failed=self._failure is not None,
            )

    def grant_probation(self, name: str) -> bool:
        """Re-admit an excluded worker for one trial shard.

        Success (a clean ``result``) clears its strikes; any further
        fault re-excludes it immediately. Returns False when the worker
        is unknown or not currently excluded.
        """
        with self._cond:
            worker = self._workers.get(name)
            if worker is None or not worker.excluded:
                return False
            worker.excluded = False
            worker.probation = True
            worker.retiring = False
            self.stats.workers_readmitted += 1
            self._cond.notify_all()
        return True

    def request_drain(self, name: str) -> bool:
        """Ask a live worker to retire: it is drained on its next
        ``ready`` instead of being parked. Cleared if it reconnects."""
        with self._cond:
            worker = self._workers.get(name)
            if (
                worker is None
                or worker.conn is None
                or worker.retiring
                or worker.excluded
            ):
                return False
            worker.retiring = True
            self.stats.workers_drained += 1
            self._cond.notify_all()
        return True

    def record_worker_spawned(self, count: int = 1) -> None:
        """Count pool-spawned workers so scaling shows up in the stats."""
        with self._lock:
            self.stats.workers_spawned += count

    # -- accept / monitor threads ---------------------------------------

    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    return
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(None)
            thread = threading.Thread(
                target=self._serve, args=(conn,), name="cluster-conn", daemon=True
            )
            thread.start()

    def _monitor_loop(self) -> None:
        """Requeue the shards of workers that stopped heartbeating."""
        interval = max(0.05, self.heartbeat_timeout / 4)
        with self._cond:
            while not self._stopping:
                now = time.monotonic()
                requeued = False
                for worker in self._workers.values():
                    if worker.conn is None or not worker.shards:
                        continue
                    if now - worker.last_seen <= self.heartbeat_timeout:
                        continue
                    # speculative requeue: keep the connection open — a
                    # late result is suppressed, an early one wins.
                    for shard in sorted(worker.shards):
                        self._requeue_locked(shard, heartbeat=True)
                    worker.shards.clear()
                    requeued = True
                if requeued:
                    self._cond.notify_all()
                # wait on the condition, never a bare sleep: shutdown()
                # flips _stopping and notifies, so even a 60 s heartbeat
                # timeout cannot stall the 5 s thread join.
                self._cond.wait(interval)

    # -- per-connection handler -----------------------------------------

    def _serve(self, conn: socket.socket) -> None:
        worker: _WorkerState | None = None
        try:
            hello = recv_message(conn)
            if hello.get("type") != "hello" or "worker" not in hello:
                raise ProtocolError(f"expected hello, got {hello.get('type')!r}")
            if hello.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol mismatch: coordinator speaks {PROTOCOL_VERSION}, "
                    f"worker speaks {hello.get('protocol')!r}"
                )
            with self._cond:
                worker = self._workers.get(hello["worker"])
                if worker is None:
                    worker = _WorkerState(name=hello["worker"])
                    self._workers[worker.name] = worker
                    self.stats.workers_seen += 1
                worker.conn = conn
                worker.last_seen = time.monotonic()
                # a returning worker is a fresh admission: any pending
                # scale-down request died with the old connection.
                worker.retiring = False
                self._cond.notify_all()
            send_message(
                conn,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "config": config_to_wire(self.config),
                    "shard_count": self.shard_count,
                    "heartbeat_interval": self.heartbeat_interval,
                    "failover": [list(a) for a in self.failover_addresses],
                },
            )
            while True:
                message = recv_message(conn)
                kind = message["type"]
                with self._cond:
                    worker.last_seen = time.monotonic()
                if kind == "heartbeat":
                    continue
                if kind == "ready":
                    if not self._handle_ready(conn, worker):
                        break
                elif kind == "result":
                    self._handle_result(worker, message)
                elif kind == "shard-error":
                    self._handle_shard_error(worker, message)
                elif kind == "bye":
                    break
                else:
                    raise ProtocolError(f"unexpected message type {kind!r}")
        except (ConnectionClosed, ProtocolError, OSError):
            if worker is not None:
                self._handle_loss(worker, conn)
        finally:
            with self._cond:
                if worker is not None and worker.conn is conn:
                    worker.conn = None
                self._cond.notify_all()
            try:
                conn.close()
            except OSError:
                pass

    def _handle_ready(self, conn: socket.socket, worker: _WorkerState) -> bool:
        """Assign the next shard, or drain. False means the worker is done."""
        last_ping = time.monotonic()
        while True:
            parked = False
            shard = None
            with self._cond:
                if (
                    self._stopping
                    or worker.excluded
                    or worker.retiring
                    or len(self._completed) == self.shard_count
                    or self._failure is not None
                ):
                    pass  # drain below
                elif self._pending:
                    shard = self._pending.popleft()
                    if shard in self._completed:
                        continue  # completed while queued (stale requeue)
                    self._attempts[shard] += 1
                    if self._attempts[shard] > self.max_shard_attempts:
                        self._failure = ClusterError(
                            f"shard {shard} still failing after "
                            f"{self.max_shard_attempts} attempts"
                        )
                        self._cond.notify_all()
                        shard = None
                    else:
                        worker.shards.add(shard)
                        worker.last_seen = time.monotonic()
                        self.stats.assignments += 1
                else:
                    # nothing pending but the run is live: a straggler's
                    # shard may yet requeue, so keep this worker parked.
                    self._cond.wait(0.1)
                    parked = True
            if parked:
                now = time.monotonic()
                if now - last_ping >= self.heartbeat_interval:
                    # park ping: gives the parked worker inbound traffic
                    # so its recv timeout only fires when this host is
                    # truly gone — and surfaces a dead parked worker as
                    # an OSError here instead of a silent leak.
                    last_ping = now
                    send_message(conn, {"type": "heartbeat"})
                continue
            if shard is None:
                send_message(conn, {"type": "drain"})
                return False
            assignment = {
                "type": "assign",
                "seed": self.config.seed,
                "scale": self.config.scale,
                "shard": shard,
                "shard_count": self.shard_count,
            }
            # warm-start hint: if this process already built a world with
            # the shard's chain name (local fallback, thread workers, a
            # previous assignment — any seed/scale, since the build
            # consumes no RNG), ship the full context snapshot (tagger
            # label-sync state + pre-screen address table) so the worker
            # skips both cold scans. Workers validate it against their
            # freshly built chain — a mismatch is ignored, never applied,
            # so the hint cannot change results.
            snapshot = context_snapshot_for(shard, self.shard_count)
            if snapshot is not None:
                assignment["context_snapshot"] = snapshot.to_wire()
            if getattr(self.config, "profile", False):
                assignment["profile"] = True
            send_message(conn, assignment)
            return True

    def _handle_result(self, worker: _WorkerState, message: dict) -> None:
        shard = message["shard"]
        with self._cond:
            worker.shards.discard(shard)
            if worker.probation:
                # the trial shard came back clean: full re-admission.
                worker.probation = False
                worker.strikes = 0
                self.stats.probation_passes += 1
            if shard in self._completed:
                self.stats.duplicates_suppressed += 1
            else:
                payload = message["payload"]
                self._completed[shard] = payload
                worker.completed += 1
                self._journal_locked(shard, payload)
                profile = message.get("profile")
                if isinstance(profile, dict):
                    self._profiles[shard] = profile
            self._cond.notify_all()

    def _handle_shard_error(self, worker: _WorkerState, message: dict) -> None:
        shard = message["shard"]
        with self._cond:
            worker.shards.discard(shard)
            self.stats.shard_errors += 1
            self._requeue_locked(shard)
            self._strike_locked(worker)
            self._cond.notify_all()

    def _handle_loss(self, worker: _WorkerState, conn: socket.socket) -> None:
        with self._cond:
            if worker.conn is not conn:
                return  # a newer connection for this identity took over
            if self._stopping:
                # a drain raced the shutdown teardown (the socket was
                # already closed under us): the run is over and the
                # worker did nothing wrong — no loss, no strike.
                worker.shards.clear()
                self._cond.notify_all()
                return
            self.stats.worker_losses += 1
            for shard in sorted(worker.shards):
                self._requeue_locked(shard)
            worker.shards.clear()
            self._strike_locked(worker)
            self._cond.notify_all()

    def _journal_locked(self, shard: int, payload: dict) -> None:
        """Append a freshly completed shard payload to the run ledger.

        Called with the lock held, right after the shard enters
        ``_completed`` — the journal and the in-memory view can never
        disagree about which shards are done.
        """
        if self.ledger is not None:
            self.ledger.record_payload(shard, payload)

    def _requeue_locked(self, shard: int, heartbeat: bool = False) -> None:
        if shard in self._completed or shard in self._pending:
            return
        self._pending.append(shard)
        self.stats.requeues += 1
        if heartbeat:
            self.stats.heartbeat_requeues += 1

    def _strike_locked(self, worker: _WorkerState) -> None:
        worker.strikes += 1
        if worker.probation:
            # the probation trial failed: re-exclude immediately, no
            # matter how far the strike count is from the threshold.
            worker.probation = False
            worker.excluded = True
            worker.excluded_at = time.monotonic()
            self.stats.probation_failures += 1
            self.stats.workers_excluded += 1
            return
        if worker.strikes >= self.max_worker_strikes and not worker.excluded:
            worker.excluded = True
            worker.excluded_at = time.monotonic()
            self.stats.workers_excluded += 1
