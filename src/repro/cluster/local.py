"""Single-machine cluster runs: spawn local workers, run, merge.

``experiments cluster --workers N`` and the benches use this module: a
coordinator on a loopback ephemeral port plus ``N`` worker *processes*
(fork start method when available). Environments that deny process
spawning degrade to worker *threads* — byte-identical results either
way, because the partition and merge never depend on where shards run.
Tests inject instrumented workers (``worker_factory``) to simulate
kills and stalls; those always run as threads so their hooks can share
state with the test.

``run_cluster_scan(..., autoscale=True)`` replaces the fixed spawn with
an :class:`~repro.cluster.autoscale.ElasticPool`: ``workers`` becomes
the *initial* pool size (0 is allowed — the pool scales from zero
against queue depth), bounded by ``min_workers``/``max_workers``, with
idle drain and probation re-admission of excluded workers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from .coordinator import ClusterStats, Coordinator
from .worker import ClusterWorker, WorkerSummary

__all__ = ["LocalWorkerHandle", "run_cluster_scan", "spawn_local_workers"]


def _worker_process_main(host: str, port: int, name: str) -> None:
    """Top-level so it pickles under every multiprocessing start method."""
    ClusterWorker((host, port), name=name).run()


@dataclass(slots=True)
class LocalWorkerHandle:
    """One spawned local worker (process or thread)."""

    name: str
    kind: str  # "process" | "thread"
    _target: object
    #: filled in for thread workers once the worker drains.
    summary: WorkerSummary | None = None

    @property
    def alive(self) -> bool:
        return self._target.is_alive()

    def join(self, timeout: float | None = None) -> None:
        self._target.join(timeout)
        if self.kind == "process" and self._target.is_alive():
            self._target.terminate()
            self._target.join(1.0)

    def kill(self) -> None:
        """Hard-kill a process worker (no-op for thread workers)."""
        if self.kind == "process":
            self._target.kill()
            self._target.join(1.0)


def _spawn_thread(worker: ClusterWorker) -> LocalWorkerHandle:
    handle = LocalWorkerHandle(name=worker.name, kind="thread", _target=None)

    def main() -> None:
        handle.summary = worker.run()

    thread = threading.Thread(target=main, name=worker.name, daemon=True)
    handle._target = thread
    thread.start()
    return handle


def spawn_local_workers(
    address: tuple[str, int],
    count: int,
    *,
    name_prefix: str = "local",
    use_processes: bool | None = None,
    worker_factory: Callable[[int, tuple[str, int]], ClusterWorker] | None = None,
) -> list[LocalWorkerHandle]:
    """Spawn ``count`` workers against ``address``.

    ``use_processes=None`` tries real processes first and silently
    degrades to threads where spawning is denied (sandboxes), mirroring
    ``ScanEngine``'s fallback. A ``worker_factory`` forces threads: its
    instrumented workers carry test hooks that cannot cross a process
    boundary.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    host, port = address
    handles: list[LocalWorkerHandle] = []
    if worker_factory is not None:
        for index in range(count):
            handles.append(_spawn_thread(worker_factory(index, address)))
        return handles

    processes_ok = use_processes is not False
    if processes_ok:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        for index in range(count):
            name = f"{name_prefix}-{index}"
            process = ctx.Process(
                target=_worker_process_main, args=(host, port, name), name=name
            )
            try:
                process.start()
            except (OSError, PermissionError):
                if use_processes is True:
                    raise
                processes_ok = False
                break
            handles.append(LocalWorkerHandle(name=name, kind="process", _target=process))
    if not processes_ok:
        for index in range(len(handles), count):
            worker = ClusterWorker(address, name=f"{name_prefix}-{index}")
            handles.append(_spawn_thread(worker))
    return handles


def run_cluster_scan(
    config,
    workers: int = 2,
    *,
    autoscale: bool = False,
    min_workers: int = 0,
    max_workers: int | None = None,
    autoscale_options: dict | None = None,
    use_processes: bool | None = None,
    worker_factory: Callable[[int, tuple[str, int]], ClusterWorker] | None = None,
    timeout: float | None = None,
    **coordinator_options,
) -> tuple[object, ClusterStats]:
    """One-call cluster scan on this machine.

    Starts a coordinator on an ephemeral loopback port, spawns
    ``workers`` local workers, blocks until the merge, and returns
    ``(WildScanResult, ClusterStats)``. The result is byte-identical to
    ``ScanEngine.run()`` for the same config — worker losses along the
    way only show up in the stats.

    With ``autoscale=True`` the fixed spawn becomes an
    :class:`~repro.cluster.autoscale.ElasticPool`: ``workers`` is the
    initial pool size (0 scales from zero), capped by ``max_workers``
    (default ``max(workers, 2)``), floored by ``min_workers``; extra
    pool knobs (``poll_interval``, ``idle_grace``,
    ``probation_cooldown``, ...) go through ``autoscale_options``.
    """
    if workers < 0 or (workers == 0 and not autoscale):
        raise ValueError(
            f"workers must be >= 1 (or >= 0 with autoscale=True), got {workers}"
        )
    coordinator = Coordinator(config, **coordinator_options)
    coordinator.start()
    handles: list[LocalWorkerHandle] = []
    pool = None
    try:
        if autoscale:
            from .autoscale import ElasticPool

            pool = ElasticPool(
                coordinator,
                min_workers=min_workers,
                max_workers=(
                    max_workers if max_workers is not None else max(workers, 2)
                ),
                initial_workers=workers,
                use_processes=use_processes,
                worker_factory=worker_factory,
                **(autoscale_options or {}),
            )
            pool.start()
        else:
            handles = spawn_local_workers(
                coordinator.address,
                workers,
                use_processes=use_processes,
                worker_factory=worker_factory,
            )
        result = coordinator.run(timeout=timeout)
    finally:
        if pool is not None:
            pool.stop()
        coordinator.shutdown()
        for handle in handles:
            handle.join(5.0)
    return result, coordinator.stats
