"""Length-prefixed JSON framing for the cluster wire protocol.

Every message between a :mod:`~repro.cluster.coordinator` and a
:mod:`~repro.cluster.worker` is one frame::

    +----------------+---------------------------+
    | length (u32 BE)| UTF-8 JSON object payload |
    +----------------+---------------------------+

The payload is always a JSON object with a ``"type"`` key. Frames are
bounded by :data:`MAX_FRAME_BYTES` so a corrupt peer cannot make the
other side allocate unbounded memory, and only JSON ever crosses the
wire — no pickling, so neither side can be made to execute anything but
the scan the messages describe.

Message vocabulary (see the coordinator/worker modules for the flow):

========================  =======================================================
coordinator → worker
========================  =======================================================
``welcome``               scan config (wire form), ``shard_count``, heartbeat
                          interval, protocol version, ``failover`` standby
                          address list
``assign``                one shard descriptor: ``seed``, ``scale``, ``shard``
                          (index), ``shard_count``
``heartbeat``             park ping, sent every heartbeat interval while the
                          worker waits for work — bounds the worker's recv
                          timeout so a dead coordinator host is detectable
``drain``                 no more work — finish up and disconnect
========================  =======================================================

========================  =======================================================
worker → coordinator
========================  =======================================================
``hello``                 worker name + protocol version
``ready``                 request the next shard assignment
``heartbeat``             liveness signal, sent every interval (also mid-shard)
``result``                one finished shard: ``shard`` + serialized ShardResult
``shard-error``           shard failed on this worker: ``shard`` + ``error``
``bye``                   clean disconnect acknowledgement
========================  =======================================================
"""

from __future__ import annotations

import json
import socket
import struct

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ConnectionClosed",
    "ProtocolError",
    "recv_message",
    "send_message",
]

#: bumped on any incompatible change to the message vocabulary.
#: v2: coordinator→worker ``heartbeat`` park pings (a v1 worker would
#: treat them as a protocol error while parked).
#: v3: versioned wire payloads (``"v"`` on config and shard-result
#: frames, strict field validation) and the optional ``tag_snapshot``
#: warm-start hint on ``assign``.
#: v4: full ``context_snapshot`` warm-start capsules (tagger + pre-screen
#: state) on ``assign``, plus the optional ``profile`` request flag on
#: ``assign`` and the per-shard ``profile`` payload on ``result``.
#: v5: hot-standby failover — ``welcome`` carries a ``failover`` address
#: list that workers merge into their connect list, and workers accept a
#: multi-address connect list, rotating through it in the reconnect loop
#: (a v4 worker pinned to one address would strand itself when the
#: primary coordinator dies).
PROTOCOL_VERSION = 5

#: upper bound on one frame; full-scale shard results stay far below this.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct("!I")


class ProtocolError(RuntimeError):
    """The peer sent something that is not a valid protocol frame."""


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (cleanly or mid-frame)."""


def send_message(sock: socket.socket, message: dict) -> None:
    """Serialize ``message`` and write it as one length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the protocol bound")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ConnectionClosed`."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                "peer closed the connection"
                + (" mid-frame" if remaining != count or chunks else "")
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict:
    """Read one frame and decode its JSON payload.

    Raises :class:`ConnectionClosed` on EOF and :class:`ProtocolError` on
    malformed frames (oversized length, bad JSON, non-object payload).
    """
    (length,) = _HEADER.unpack(_recv_exactly(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the protocol bound")
    payload = _recv_exactly(sock, length)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame payload is not a typed JSON object")
    return message
