"""Distributed shard scheduling for the wild scan.

The sharded engine's shard descriptors are pure data, so they travel: a
:class:`~repro.cluster.coordinator.Coordinator` serves them to
:class:`~repro.cluster.worker.ClusterWorker`\\ s over a length-prefixed
JSON TCP protocol (:mod:`repro.cluster.protocol`), survives worker loss,
stalls and repeated failure (heartbeats, requeue, duplicate suppression,
bounded retry, exclusion), and merges the streamed-back shard results
into a ``WildScanResult`` byte-identical to ``ScanEngine.run()`` for the
same ``(seed, scale, shards)`` — regardless of worker count, worker
deaths or completion order.

Quick start (one machine)::

    from repro.cluster import run_cluster_scan
    from repro.workload.generator import WildScanConfig

    result, stats = run_cluster_scan(
        WildScanConfig(scale=0.01, shards=8), workers=2
    )

Elastic (scale from zero against queue depth, drain when idle, re-admit
excluded workers on probation — :mod:`repro.cluster.autoscale`)::

    result, stats = run_cluster_scan(
        WildScanConfig(scale=0.01, shards=8),
        workers=0, autoscale=True, max_workers=4,
    )

Multiple machines: run ``experiments cluster --serve`` on the
coordinator host and ``experiments cluster --connect HOST:PORT`` on each
worker host. Journaled runs can additionally run ``--standby`` on a
second host (same ledger path): it probes the primary, and if the
primary dies mid-scan it adopts the journal and finishes the run —
workers given both addresses (``--connect HOST:PORT,HOST:PORT``) fail
over through their reconnect loop (:mod:`repro.cluster.standby`).
"""

from .autoscale import ElasticPool
from .coordinator import CapacitySnapshot, ClusterError, ClusterStats, Coordinator
from .local import LocalWorkerHandle, run_cluster_scan, spawn_local_workers
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)
from .standby import StandbyCoordinator, StandbyError
from .worker import ClusterWorker, WorkerKilled, WorkerSummary

__all__ = [
    "CapacitySnapshot",
    "ClusterError",
    "ClusterStats",
    "ClusterWorker",
    "ConnectionClosed",
    "Coordinator",
    "ElasticPool",
    "LocalWorkerHandle",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "StandbyCoordinator",
    "StandbyError",
    "WorkerKilled",
    "WorkerSummary",
    "recv_message",
    "run_cluster_scan",
    "send_message",
    "spawn_local_workers",
]
