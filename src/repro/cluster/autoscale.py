"""Elastic worker pools: autoscale local workers against queue depth.

:class:`ElasticPool` is a policy thread attached to one
:class:`~repro.cluster.coordinator.Coordinator`. Every ``poll_interval``
it reads a :class:`~repro.cluster.coordinator.CapacitySnapshot` and
closes the gap between *demand* (``pending + running`` shards) and
*capacity* (live workers plus spawns still connecting):

- **scale up / scale from zero** — while demand exceeds capacity it
  spawns local workers (processes where allowed, threads otherwise, or
  whatever ``worker_factory`` builds) up to ``max_workers``; a
  ``Coordinator.run(timeout=None)`` with no connected workers therefore
  spawns instead of hanging forever;
- **scale down** — once the queue has been empty for ``idle_grace``
  seconds, idle pool-spawned workers beyond ``min_workers`` are asked to
  drain (workers the pool did not spawn — e.g. remote ones — are never
  drained);
- **probation re-admission** — an excluded worker is re-admitted after
  ``probation_cooldown`` seconds for one trial shard: a clean result
  clears its strikes, any further fault re-excludes it. If the excluded
  identity is one of ours and its process/thread is gone, the pool
  respawns it under the same name (strikes follow the name, not the
  socket); identities still knocking (``reconnect=True`` workers, remote
  workers) are simply allowed back in. A probationer returning while the
  pool is already at ``max_workers`` may briefly exceed it — the trial
  is the point.

Scaling decisions never touch the partition or the merge, so the
coordinator's byte-identity contract with ``ScanEngine.run()`` holds
under any scaling sequence. Scaling events are visible in
:class:`~repro.cluster.coordinator.ClusterStats` (``workers_spawned``,
``workers_drained``, ``workers_readmitted``, ``probation_passes``,
``probation_failures``).
"""

from __future__ import annotations

import threading
import time

from .local import LocalWorkerHandle, _spawn_thread, _worker_process_main
from .worker import ClusterWorker

__all__ = ["ElasticPool"]

#: how often the policy thread re-reads the capacity snapshot.
DEFAULT_POLL_INTERVAL = 0.05

#: how long the queue must stay empty before idle workers are drained.
DEFAULT_IDLE_GRACE = 0.25

#: seconds an excluded worker waits before its probation trial.
DEFAULT_PROBATION_COOLDOWN = 1.0


class ElasticPool:
    """Autoscaling policy thread for one coordinator's worker fleet.

    ``worker_factory(index, address)`` — when given — builds every
    spawned worker (always run as a thread, like
    :func:`~repro.cluster.local.spawn_local_workers`); it must return a
    worker whose name is a pure function of ``index`` so a probation
    respawn of index *i* reproduces the excluded identity.
    """

    def __init__(
        self,
        coordinator,
        *,
        min_workers: int = 0,
        max_workers: int = 4,
        initial_workers: int = 0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        idle_grace: float = DEFAULT_IDLE_GRACE,
        probation_cooldown: float = DEFAULT_PROBATION_COOLDOWN,
        name_prefix: str = "elastic",
        use_processes: bool | None = None,
        worker_factory=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if not 0 <= min_workers <= max_workers:
            raise ValueError(
                f"min_workers must be in [0, max_workers], got {min_workers}"
            )
        if not 0 <= initial_workers <= max_workers:
            raise ValueError(
                f"initial_workers must be in [0, max_workers], got {initial_workers}"
            )
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        if idle_grace < 0 or probation_cooldown < 0:
            raise ValueError("idle_grace and probation_cooldown must be >= 0")
        self.coordinator = coordinator
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.initial_workers = initial_workers
        self.poll_interval = poll_interval
        self.idle_grace = idle_grace
        self.probation_cooldown = probation_cooldown
        self.name_prefix = name_prefix
        self.use_processes = use_processes
        self.worker_factory = worker_factory
        self._processes_ok = use_processes is not False
        self._handles: dict[str, LocalWorkerHandle] = {}
        self._thread_workers: dict[str, ClusterWorker] = {}
        self._indices: dict[str, int] = {}  # respawn recipes, kept forever
        self._spawned = 0
        self._idle_since: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started = False

    # -- lifecycle -------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while the policy thread can still add capacity."""
        return self._started and not self._stop.is_set()

    def __enter__(self) -> "ElasticPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> None:
        """Attach to the coordinator and start scaling (idempotent)."""
        if self._started:
            return
        self._started = True
        self.coordinator.attach_pool(self)
        for _ in range(self.initial_workers):
            self._spawn_one()
        self._thread = threading.Thread(
            target=self._loop, name="cluster-autoscale", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop scaling, detach, and stop/join every spawned worker."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
        self.coordinator.detach_pool(self)
        for worker in self._thread_workers.values():
            worker.stop()
        for handle in self._handles.values():
            handle.join(timeout)

    def _loop(self) -> None:
        try:
            while not self._stop.wait(self.poll_interval):
                self._tick(time.monotonic())
        finally:
            # a dead policy thread must not look active, or the
            # coordinator would defer its no-capacity fallback forever.
            self._stop.set()

    # -- one policy step -------------------------------------------------

    def _tick(self, now: float) -> None:
        snapshot = self.coordinator.capacity_snapshot()
        if snapshot.stopping or snapshot.failed:
            return
        self._reap()
        if snapshot.finished:
            return
        self._run_probation(snapshot)
        demand = snapshot.demand
        capacity = self._capacity(snapshot)
        target = min(self.max_workers, max(self.min_workers, demand))
        for _ in range(target - capacity):
            self._spawn_one()
        if snapshot.pending > 0:
            self._idle_since = None
            return
        if self._idle_since is None:
            self._idle_since = now
        if now - self._idle_since < self.idle_grace:
            return
        allowance = len(snapshot.live_workers) - max(self.min_workers, 0)
        for name in snapshot.idle_workers:
            if allowance <= 0:
                break
            if name not in self._handles:
                continue  # never drain workers the pool did not spawn
            if self.coordinator.request_drain(name):
                allowance -= 1

    def _capacity(self, snapshot) -> int:
        """Live workers plus our spawns that have not finished hello yet."""
        connected = set(snapshot.live_workers)
        joining = {
            name
            for name, handle in self._handles.items()
            if handle.alive
            and name not in connected
            and name not in snapshot.excluded_ages
            and name not in snapshot.retiring_workers
        }
        return len(connected) + len(joining)

    def _run_probation(self, snapshot) -> None:
        for name, age in snapshot.excluded_ages.items():
            if age < self.probation_cooldown:
                continue
            if not self.coordinator.grant_probation(name):
                continue
            handle = self._handles.get(name)
            if handle is not None and handle.alive:
                continue  # still knocking (reconnect loop) — it returns itself
            if name in self._indices:
                # one of ours, and its process/thread is gone: resurrect
                # the identity so the trial shard has a taker.
                self._launch(self._indices[name], name=name)
            # excluded workers we never spawned (remote) are merely
            # re-admitted: they get the trial if/when they reconnect.

    # -- spawning --------------------------------------------------------

    def _spawn_one(self) -> None:
        index = self._spawned
        self._spawned += 1
        self._launch(index)

    def _launch(self, index: int, name: str | None = None) -> None:
        if self.worker_factory is not None:
            worker = self.worker_factory(index, self.coordinator.address)
            handle = _spawn_thread(worker)
            self._thread_workers[handle.name] = worker
        else:
            handle = self._spawn_default(name or f"{self.name_prefix}-{index}")
        self._handles[handle.name] = handle
        self._indices[handle.name] = index
        self.coordinator.record_worker_spawned()

    def _spawn_default(self, name: str) -> LocalWorkerHandle:
        host, port = self.coordinator.address
        if self._processes_ok:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            process = ctx.Process(
                target=_worker_process_main, args=(host, port, name), name=name
            )
            try:
                process.start()
                return LocalWorkerHandle(name=name, kind="process", _target=process)
            except (OSError, PermissionError):
                if self.use_processes is True:
                    raise
                self._processes_ok = False
        worker = ClusterWorker((host, port), name=name)
        self._thread_workers[name] = worker
        return _spawn_thread(worker)

    def _reap(self) -> None:
        for name, handle in list(self._handles.items()):
            if not handle.alive:
                del self._handles[name]
                self._thread_workers.pop(name, None)
