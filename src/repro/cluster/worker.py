"""The cluster worker: rebuilds shards from descriptors, streams results.

A worker owns no scheduling state. It connects to a coordinator, learns
the scan config from the ``welcome`` message, and then loops
``ready`` → ``assign`` → execute → ``result`` until drained. Given a
descriptor ``(seed, scale, shard_index, shard_count)`` it rebuilds the
canonical schedule locally (:func:`~repro.engine.plan.build_schedule` is
pure data, so shipping the descriptor is cheaper than shipping the task
list) and executes its shard through the exact seam the in-process
engines use — :func:`~repro.engine.scan.build_shard_context` /
``execute_task`` / ``detect_task`` / ``finalize_shard`` — which is what
makes a cluster run byte-identical to a local one.

A background thread heartbeats every ``heartbeat_interval`` (negotiated
in the welcome) including mid-shard, so the coordinator can tell a slow
worker from a dead one. Liveness runs both ways: every read after the
welcome is bounded by a recv timeout of a few heartbeat intervals
(the coordinator park-pings a parked worker every interval), so a
coordinator host that dies without ever sending FIN strands the worker
for seconds, not forever — it exits with ``summary.disconnected``.

With ``reconnect=True`` the worker outlives single sessions: after a
drain or disconnect it reconnects with exponential backoff, which is
what lets a drained (elastic scale-down) or excluded worker return and
be re-admitted on probation by :mod:`repro.cluster.autoscale`. The loop
ends on :meth:`ClusterWorker.stop`, on ``reconnect_tries`` consecutive
fruitless sessions, or on a kill.

The connect target is a *list* of coordinator addresses (protocol v5):
the worker connects to the first that answers, stays sticky on it while
sessions succeed, and rotates to the next — a hot-standby coordinator —
when a connect fails or a session ends in a disconnect. The ``welcome``
may carry further ``failover`` addresses, which are merged into the
list, so a fleet launched with only the primary's address still fails
over to a standby the primary knew about.

Shard failures are reported as ``shard-error`` and the worker keeps
serving; an abrupt death can be simulated through ``task_hook`` raising
:class:`WorkerKilled` (the fault-injection tests' kill switch — the
socket drops mid-shard with no goodbye, exactly like a SIGKILL'd
process).
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..engine.plan import build_schedule, shard_schedule, split_schedule_tail
from ..engine.scan import (
    build_shard_context,
    detect_task,
    execute_task,
    finalize_shard,
)
from ..engine.wire import config_from_wire, shard_result_to_wire
from .protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)

__all__ = ["ClusterWorker", "WorkerKilled", "WorkerSummary"]


class WorkerKilled(BaseException):
    """Raised by a ``task_hook`` to simulate a worker dying mid-shard.

    Derives from ``BaseException`` so ordinary ``except Exception``
    error reporting cannot turn a simulated kill into a polite
    ``shard-error`` message — the socket just drops.
    """


@dataclass(slots=True)
class WorkerSummary:
    """What one worker did before disconnecting."""

    name: str
    shards_completed: int = 0
    shard_errors: int = 0
    tasks_executed: int = 0
    killed: bool = False
    #: set when the coordinator vanished instead of draining us.
    disconnected: bool = False
    #: welcomed sessions served (> 1 only with ``reconnect=True``).
    sessions: int = 0
    #: backoff-then-retry cycles the reconnect loop went through.
    reconnects: int = 0
    #: times the worker moved to a different coordinator address.
    failovers: int = 0


class ClusterWorker:
    """One worker process/thread serving a coordinator.

    ``task_hook(worker, shard_index, task_number)`` — when given — runs
    before every task and may raise (``WorkerKilled`` for an abrupt
    death, anything else for a reported shard error); tests use it for
    fault injection, e.g. stalling heartbeats via ``heartbeats_enabled``.

    ``recv_timeout`` bounds every read after the welcome; it defaults to
    six negotiated heartbeat intervals (the coordinator park-pings every
    interval while a worker waits for work), so a silently-dead
    coordinator host cannot block the worker forever.
    """

    def __init__(
        self,
        address,
        *,
        name: str | None = None,
        connect_timeout: float = 10.0,
        recv_timeout: float | None = None,
        reconnect: bool = False,
        reconnect_backoff: float = 0.25,
        reconnect_max_delay: float = 4.0,
        reconnect_tries: int = 8,
        task_hook: Callable[["ClusterWorker", int, int], None] | None = None,
    ) -> None:
        if recv_timeout is not None and recv_timeout <= 0:
            raise ValueError(f"recv_timeout must be > 0, got {recv_timeout}")
        if reconnect_backoff <= 0:
            raise ValueError(
                f"reconnect_backoff must be > 0, got {reconnect_backoff}"
            )
        if reconnect_tries < 0:
            raise ValueError(f"reconnect_tries must be >= 0, got {reconnect_tries}")
        #: ordered connect list: primary first, then standbys. The first
        #: address that answers becomes sticky until it fails.
        self.addresses = self._normalize_addresses(address)
        self._cursor = 0
        self.name = name or f"worker-{socket.gethostname()}-{os.getpid()}"
        self.connect_timeout = connect_timeout
        self.recv_timeout = recv_timeout
        self.reconnect = reconnect
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_max_delay = max(reconnect_backoff, reconnect_max_delay)
        self.reconnect_tries = reconnect_tries
        self.task_hook = task_hook
        #: flipped by fault-injection hooks to simulate a stalled worker.
        self.heartbeats_enabled = True
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._halt = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The coordinator address the worker currently prefers."""
        return self.addresses[self._cursor]

    @staticmethod
    def _normalize_addresses(address) -> list[tuple[str, int]]:
        """Accept one ``(host, port)`` pair or a sequence of them."""
        if (
            isinstance(address, (tuple, list))
            and len(address) == 2
            and isinstance(address[0], str)
        ):
            candidates = [address]
        else:
            candidates = list(address)
        addresses: list[tuple[str, int]] = []
        for host, port in candidates:
            pair = (str(host), int(port))
            if pair not in addresses:
                addresses.append(pair)
        if not addresses:
            raise ValueError("worker needs at least one coordinator address")
        return addresses

    def _learn_addresses(self, pairs) -> None:
        """Merge ``failover`` addresses from a welcome into the list."""
        for pair in pairs or []:
            host, port = pair
            normalized = (str(host), int(port))
            if normalized not in self.addresses:
                self.addresses.append(normalized)

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Ask the worker to exit: ends the reconnect loop and unblocks
        any read in flight by tearing down the current socket."""
        self._halt.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def run(self) -> WorkerSummary:
        """Serve the coordinator until drained (or dead); return a summary.

        Without ``reconnect``, one session: connection-establishment
        errors propagate, and a mid-session disconnect sets
        ``summary.disconnected``. With ``reconnect``, sessions repeat
        with exponential backoff until :meth:`stop`, a kill, or
        ``reconnect_tries`` consecutive sessions without any work.
        """
        summary = WorkerSummary(name=self.name)
        delay = self.reconnect_backoff
        fruitless = 0
        while True:
            progress_before = (
                summary.shards_completed
                + summary.shard_errors
                + summary.tasks_executed
            )
            try:
                sock = self._connect(summary)
            except OSError:
                if not self.reconnect:
                    raise
                summary.disconnected = True
            else:
                try:
                    self._serve_session(sock, summary)
                except WorkerKilled:
                    summary.killed = True
                    break
                except (ConnectionClosed, OSError):
                    summary.disconnected = True
                    # a dead coordinator rarely sends FIN before dying —
                    # prefer the next address (the standby) right away
                    # instead of re-courting the corpse.
                    if len(self.addresses) > 1:
                        self._cursor = (self._cursor + 1) % len(self.addresses)
                        summary.failovers += 1
            if not self.reconnect or self._halt.is_set():
                break
            progressed = (
                summary.shards_completed
                + summary.shard_errors
                + summary.tasks_executed
            ) > progress_before
            if progressed:
                fruitless = 0
                delay = self.reconnect_backoff
            else:
                fruitless += 1
                if fruitless > self.reconnect_tries:
                    break
            if self._halt.wait(delay):
                break
            delay = min(delay * 2, self.reconnect_max_delay)
            summary.reconnects += 1
        return summary

    # ------------------------------------------------------------------

    def _connect(self, summary: WorkerSummary) -> socket.socket:
        """Connect to the first answering address, starting at the
        sticky cursor and rotating through the rest; raises the last
        ``OSError`` when every address refuses."""
        last_error: OSError | None = None
        for offset in range(len(self.addresses)):
            index = (self._cursor + offset) % len(self.addresses)
            try:
                sock = socket.create_connection(
                    self.addresses[index], timeout=self.connect_timeout
                )
            except OSError as exc:
                last_error = exc
                continue
            if index != self._cursor:
                self._cursor = index
                summary.failovers += 1
            return sock
        assert last_error is not None
        raise last_error

    def _serve_session(self, sock: socket.socket, summary: WorkerSummary) -> None:
        """One connect → hello → serve-until-drained session."""
        summary.disconnected = False
        heartbeat_stop = threading.Event()
        heartbeat_thread: threading.Thread | None = None
        # the handshake runs under the connect timeout: a coordinator
        # that accepts but never answers must not park us forever.
        sock.settimeout(self.connect_timeout)
        self._sock = sock
        try:
            self._send({"type": "hello", "worker": self.name,
                        "protocol": PROTOCOL_VERSION})
            welcome = recv_message(sock)
            if welcome.get("type") != "welcome":
                raise ProtocolError(f"expected welcome, got {welcome.get('type')!r}")
            if welcome.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol mismatch: worker speaks {PROTOCOL_VERSION}, "
                    f"coordinator speaks {welcome.get('protocol')!r}"
                )
            summary.sessions += 1
            self._learn_addresses(welcome.get("failover"))
            config = config_from_wire(welcome["config"])
            shard_count = welcome["shard_count"]
            interval = float(welcome.get("heartbeat_interval", 1.0))
            # liveness bound: the coordinator park-pings every interval
            # while we wait for work, so several silent intervals mean
            # its host is gone (no FIN ever came) — stop waiting.
            sock.settimeout(self.recv_timeout or max(1.0, 6.0 * interval))
            heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(interval, heartbeat_stop),
                name=f"{self.name}-heartbeat",
                daemon=True,
            )
            heartbeat_thread.start()

            parts_cache: dict[tuple, list[list]] = {}
            while True:
                self._send({"type": "ready"})
                while True:
                    message = recv_message(sock)
                    if message["type"] != "heartbeat":  # skip park pings
                        break
                kind = message["type"]
                if kind == "drain":
                    try:
                        self._send({"type": "bye"})
                    except OSError:
                        pass  # coordinator may already have hung up
                    break
                if kind != "assign":
                    raise ProtocolError(f"unexpected message type {kind!r}")
                self._execute_assignment(
                    message, config, shard_count, parts_cache, summary
                )
        finally:
            heartbeat_stop.set()
            try:
                sock.close()
            except OSError:
                pass
            self._sock = None
            if heartbeat_thread is not None:
                heartbeat_thread.join(timeout=5.0)

    def _execute_assignment(
        self,
        message: dict,
        config,
        shard_count: int,
        parts_cache: dict,
        summary: WorkerSummary,
    ) -> None:
        shard = message["shard"]
        descriptor = (
            message.get("seed", config.seed),
            message.get("scale", config.scale),
            message.get("shard_count", shard_count),
        )
        seed, scale, shard_count = descriptor
        if (seed, scale) != (config.seed, config.scale):
            # descriptors are authoritative; re-derive the config so the
            # shard's world is a pure function of what was assigned.
            config = dataclasses.replace(config, seed=seed, scale=scale)
        if message.get("profile") and not getattr(config, "profile", False):
            # the profile flag rides the assignment, not the config wire
            # (it is an execution knob, excluded from the config digest).
            config = dataclasses.replace(config, profile=True)
        # split_attacks extends the schedule, so it must key the cache
        # alongside the descriptor triple.
        cache_key = descriptor + (config.split_attacks,)
        parts = parts_cache.get(cache_key)
        if parts is None:
            tasks = build_schedule(scale, seed)
            if config.split_attacks:
                # the tail interleave must use the partition's shard
                # count — the descriptor is authoritative here, exactly
                # as it is for seed/scale.
                tasks = tasks + split_schedule_tail(
                    config.split_attacks, shard_count, seed
                )
            parts = parts_cache[cache_key] = shard_schedule(tasks, shard_count)
        try:
            ctx = build_shard_context(
                config, shard, shard_count,
                tag_snapshot=message.get("tag_snapshot"),
                context_snapshot=message.get("context_snapshot"),
            )
            prof = ctx.profiler
            for number, task in enumerate(parts[shard]):
                if self.task_hook is not None:
                    self.task_hook(self, shard, number)
                if prof is None:
                    labeled = execute_task(ctx, task)
                    if labeled is not None:
                        detect_task(ctx, labeled)
                else:
                    started = time.perf_counter_ns()
                    labeled = execute_task(ctx, task)
                    prof.add("execute", time.perf_counter_ns() - started)
                    if labeled is not None:
                        started = time.perf_counter_ns()
                        detect_task(ctx, labeled)
                        prof.add("detect", time.perf_counter_ns() - started)
                summary.tasks_executed += 1
            result = finalize_shard(ctx)
        except (WorkerKilled, ConnectionClosed, OSError):
            raise
        except Exception as exc:
            summary.shard_errors += 1
            self._send({"type": "shard-error", "shard": shard, "error": repr(exc)})
            return
        reply = {
            "type": "result", "shard": shard, "payload": shard_result_to_wire(result)
        }
        if result.profile is not None:
            # observability sidecar: rides the result frame but stays out
            # of the wire payload (and therefore the coordinator journal).
            reply["profile"] = result.profile
        self._send(reply)
        summary.shards_completed += 1

    def _send(self, message: dict) -> None:
        sock = self._sock
        if sock is None:
            raise ConnectionClosed("worker socket already closed")
        with self._send_lock:
            send_message(sock, message)

    def _heartbeat_loop(self, interval: float, stop: threading.Event) -> None:
        while not stop.wait(interval):
            if not self.heartbeats_enabled:
                continue
            try:
                self._send({"type": "heartbeat"})
            except (ConnectionClosed, OSError):
                return
