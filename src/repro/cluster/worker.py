"""The cluster worker: rebuilds shards from descriptors, streams results.

A worker owns no scheduling state. It connects to a coordinator, learns
the scan config from the ``welcome`` message, and then loops
``ready`` → ``assign`` → execute → ``result`` until drained. Given a
descriptor ``(seed, scale, shard_index, shard_count)`` it rebuilds the
canonical schedule locally (:func:`~repro.engine.plan.build_schedule` is
pure data, so shipping the descriptor is cheaper than shipping the task
list) and executes its shard through the exact seam the in-process
engines use — :func:`~repro.engine.scan.build_shard_context` /
``execute_task`` / ``detect_task`` / ``finalize_shard`` — which is what
makes a cluster run byte-identical to a local one.

A background thread heartbeats every ``heartbeat_interval`` (negotiated
in the welcome) including mid-shard, so the coordinator can tell a slow
worker from a dead one. Shard failures are reported as ``shard-error``
and the worker keeps serving; an abrupt death can be simulated through
``task_hook`` raising :class:`WorkerKilled` (the fault-injection tests'
kill switch — the socket drops mid-shard with no goodbye, exactly like a
SIGKILL'd process).
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading
from dataclasses import dataclass
from typing import Callable

from ..engine.plan import build_schedule, shard_schedule
from ..engine.scan import (
    build_shard_context,
    detect_task,
    execute_task,
    finalize_shard,
)
from ..engine.wire import config_from_wire, shard_result_to_wire
from .protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)

__all__ = ["ClusterWorker", "WorkerKilled", "WorkerSummary"]


class WorkerKilled(BaseException):
    """Raised by a ``task_hook`` to simulate a worker dying mid-shard.

    Derives from ``BaseException`` so ordinary ``except Exception``
    error reporting cannot turn a simulated kill into a polite
    ``shard-error`` message — the socket just drops.
    """


@dataclass(slots=True)
class WorkerSummary:
    """What one worker did before disconnecting."""

    name: str
    shards_completed: int = 0
    shard_errors: int = 0
    tasks_executed: int = 0
    killed: bool = False
    #: set when the coordinator vanished instead of draining us.
    disconnected: bool = False


class ClusterWorker:
    """One worker process/thread serving a coordinator.

    ``task_hook(worker, shard_index, task_number)`` — when given — runs
    before every task and may raise (``WorkerKilled`` for an abrupt
    death, anything else for a reported shard error); tests use it for
    fault injection, e.g. stalling heartbeats via ``heartbeats_enabled``.
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        name: str | None = None,
        connect_timeout: float = 10.0,
        task_hook: Callable[["ClusterWorker", int, int], None] | None = None,
    ) -> None:
        host, port = address
        self.address = (host, int(port))
        self.name = name or f"worker-{socket.gethostname()}-{os.getpid()}"
        self.connect_timeout = connect_timeout
        self.task_hook = task_hook
        #: flipped by fault-injection hooks to simulate a stalled worker.
        self.heartbeats_enabled = True
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()

    # ------------------------------------------------------------------

    def run(self) -> WorkerSummary:
        """Serve the coordinator until drained (or dead); return a summary."""
        summary = WorkerSummary(name=self.name)
        heartbeat_thread: threading.Thread | None = None
        sock = socket.create_connection(self.address, timeout=self.connect_timeout)
        sock.settimeout(None)
        self._sock = sock
        try:
            self._send({"type": "hello", "worker": self.name,
                        "protocol": PROTOCOL_VERSION})
            welcome = recv_message(sock)
            if welcome.get("type") != "welcome":
                raise ProtocolError(f"expected welcome, got {welcome.get('type')!r}")
            if welcome.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol mismatch: worker speaks {PROTOCOL_VERSION}, "
                    f"coordinator speaks {welcome.get('protocol')!r}"
                )
            config = config_from_wire(welcome["config"])
            shard_count = welcome["shard_count"]
            interval = float(welcome.get("heartbeat_interval", 1.0))
            heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(interval,),
                name=f"{self.name}-heartbeat",
                daemon=True,
            )
            heartbeat_thread.start()

            parts_cache: dict[tuple, list[list]] = {}
            while True:
                self._send({"type": "ready"})
                message = recv_message(sock)
                kind = message["type"]
                if kind == "drain":
                    try:
                        self._send({"type": "bye"})
                    except OSError:
                        pass  # coordinator may already have hung up
                    break
                if kind != "assign":
                    raise ProtocolError(f"unexpected message type {kind!r}")
                self._execute_assignment(
                    message, config, shard_count, parts_cache, summary
                )
        except WorkerKilled:
            summary.killed = True
        except (ConnectionClosed, OSError):
            summary.disconnected = True
        finally:
            self._stop.set()
            try:
                sock.close()
            except OSError:
                pass
            self._sock = None
            if heartbeat_thread is not None:
                heartbeat_thread.join(timeout=5.0)
        return summary

    # ------------------------------------------------------------------

    def _execute_assignment(
        self,
        message: dict,
        config,
        shard_count: int,
        parts_cache: dict,
        summary: WorkerSummary,
    ) -> None:
        shard = message["shard"]
        descriptor = (
            message.get("seed", config.seed),
            message.get("scale", config.scale),
            message.get("shard_count", shard_count),
        )
        seed, scale, shard_count = descriptor
        if (seed, scale) != (config.seed, config.scale):
            # descriptors are authoritative; re-derive the config so the
            # shard's world is a pure function of what was assigned.
            config = dataclasses.replace(config, seed=seed, scale=scale)
        parts = parts_cache.get(descriptor)
        if parts is None:
            tasks = build_schedule(scale, seed)
            parts = parts_cache[descriptor] = shard_schedule(tasks, shard_count)
        try:
            ctx = build_shard_context(config, shard, shard_count)
            for number, task in enumerate(parts[shard]):
                if self.task_hook is not None:
                    self.task_hook(self, shard, number)
                labeled = execute_task(ctx, task)
                if labeled is not None:
                    detect_task(ctx, labeled)
                summary.tasks_executed += 1
            result = finalize_shard(ctx)
        except (WorkerKilled, ConnectionClosed, OSError):
            raise
        except Exception as exc:
            summary.shard_errors += 1
            self._send({"type": "shard-error", "shard": shard, "error": repr(exc)})
            return
        self._send(
            {"type": "result", "shard": shard, "payload": shard_result_to_wire(result)}
        )
        summary.shards_completed += 1

    def _send(self, message: dict) -> None:
        sock = self._sock
        if sock is None:
            raise ConnectionClosed("worker socket already closed")
        with self._send_lock:
            send_message(sock, message)

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            if not self.heartbeats_enabled:
                continue
            try:
                self._send({"type": "heartbeat"})
            except (ConnectionClosed, OSError):
                return
