"""Hot-standby coordinator: adopt a dead primary's ledger mid-scan.

A :class:`StandbyCoordinator` is the failover half of a journaled
cluster run. It binds its serve socket *up front* — so its address can
sit in every worker's multi-address connect list (and in the primary's
``failover`` welcome broadcast) from the moment the fleet launches —
but does not coordinate anything while the primary is alive:

- **follower phase** — a background loop accepts and immediately closes
  any worker connection (the worker's reconnect loop backs off and
  retries, landing back on the primary while it lives), while a probe
  thread watches the primary's serve socket: ``probe_failures``
  consecutive refused/timed-out connects spaced ``probe_interval``
  apart declare the primary dead. Crucially, the standby does *not*
  open the ledger file while following — the primary owns the journal,
  and two writers (or a follower truncating a tail the primary is
  mid-append on) would corrupt it.
- **adoption** — :meth:`adopt` stops the follower loop and builds a
  regular :class:`~repro.cluster.coordinator.Coordinator` around the
  already-bound socket and the primary's ledger path. Opening the
  ledger replays every shard the primary journaled before dying
  (tolerating the torn tail of a mid-append kill), seeds
  ``stats.resumed_shards``, and queues only ``ledger.remaining()`` —
  the adopted run re-executes nothing. Workers that were pointed at
  both addresses reconnect through their backoff loop and the scan
  finishes with a merged result byte-identical to an uninterrupted run
  (the ledger merge makes that a structural property, not a hope).

The division of labor is deliberately minimal: all fault handling —
requeue, duplicate suppression (late results from the dead primary's
workers), strikes, fallback — is the ordinary ``Coordinator`` machinery.
The standby only answers "when is it my turn, with which socket, and
from which journal".
"""

from __future__ import annotations

import socket
import threading
import time

from .coordinator import Coordinator

__all__ = ["StandbyCoordinator", "StandbyError"]

#: seconds between liveness probes of the primary's serve socket.
DEFAULT_PROBE_INTERVAL = 0.25
#: connect timeout for one probe.
DEFAULT_PROBE_TIMEOUT = 1.0
#: consecutive failed probes before the primary is declared dead.
DEFAULT_PROBE_FAILURES = 3


class StandbyError(RuntimeError):
    """The standby cannot do what was asked in its current phase."""


class StandbyCoordinator:
    """Follow a primary coordinator; adopt its ledger when it dies.

    Usage::

        standby = StandbyCoordinator(
            config, primary=primary_addr, ledger="run.ledger")
        standby.start()                       # follow + probe
        workers connect to [primary_addr, standby.address]
        if standby.wait_for_primary_death(timeout=...):
            result = standby.adopt_and_run()  # finish the scan

    ``coordinator_options`` are forwarded to the adopted
    :class:`Coordinator` (heartbeat tuning, ``local_fallback``, ...);
    ``ledger`` may be a path (opened only at adoption) or an already-open
    :class:`~repro.runtime.ledger.RunLedger`.
    """

    def __init__(
        self,
        config,
        *,
        primary: tuple[str, int],
        ledger,
        host: str = "127.0.0.1",
        port: int = 0,
        probe_interval: float = DEFAULT_PROBE_INTERVAL,
        probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
        probe_failures: int = DEFAULT_PROBE_FAILURES,
        coordinator_options: dict | None = None,
    ) -> None:
        if probe_interval <= 0:
            raise ValueError(f"probe_interval must be > 0, got {probe_interval}")
        if probe_timeout <= 0:
            raise ValueError(f"probe_timeout must be > 0, got {probe_timeout}")
        if probe_failures < 1:
            raise ValueError(f"probe_failures must be >= 1, got {probe_failures}")
        if ledger is None:
            raise ValueError(
                "a standby needs the run ledger — without the journal there "
                "is nothing to adopt"
            )
        self.config = config
        self.primary = (str(primary[0]), int(primary[1]))
        self.ledger = ledger
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.probe_failures = probe_failures
        self.coordinator_options = dict(coordinator_options or {})

        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(16)
        self._server.settimeout(0.2)
        #: bound before the fleet launches, so workers can carry it in
        #: their connect list while the primary is still the one serving.
        self.address: tuple[str, int] = self._server.getsockname()[:2]

        self._halt = threading.Event()
        self._primary_dead = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._coordinator: Coordinator | None = None
        #: probes attempted while following (observability).
        self.probe_count = 0
        #: ``time.monotonic()`` timestamps bracketing the follower phase.
        self.started_at: float | None = None
        self.death_detected_at: float | None = None

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "StandbyCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def start(self) -> None:
        """Begin following: refuse workers politely, probe the primary."""
        if self._started:
            return
        if self._coordinator is not None:
            raise StandbyError("standby has already adopted")
        self._started = True
        self.started_at = time.monotonic()
        for target, name in (
            (self._follow_loop, "standby-follow"),
            (self._probe_loop, "standby-probe"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def shutdown(self) -> None:
        """Stop following. Closes the socket only if it was never handed
        to an adopted coordinator (which then owns its lifecycle)."""
        self._halt.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        if self._coordinator is None:
            try:
                self._server.close()
            except OSError:
                pass

    # -- follower phase --------------------------------------------------

    @property
    def primary_dead(self) -> bool:
        return self._primary_dead.is_set()

    def wait_for_primary_death(self, timeout: float | None = None) -> bool:
        """Block until the probe declares the primary dead (or timeout)."""
        return self._primary_dead.wait(timeout)

    def _follow_loop(self) -> None:
        # Accept-and-close: a connecting worker sees the connection drop
        # before the welcome, books a fruitless session, and retries with
        # backoff — by which time either the primary answered or this
        # standby has adopted and serves it for real.
        while not self._halt.is_set():
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                conn.close()
            except OSError:
                pass

    def _probe_loop(self) -> None:
        failures = 0
        while not self._halt.is_set():
            self.probe_count += 1
            try:
                probe = socket.create_connection(
                    self.primary, timeout=self.probe_timeout
                )
            except OSError:
                failures += 1
                if failures >= self.probe_failures:
                    self.death_detected_at = time.monotonic()
                    self._primary_dead.set()
                    return
            else:
                try:
                    probe.close()
                except OSError:
                    pass
                failures = 0
            if self._halt.wait(self.probe_interval):
                return

    # -- adoption --------------------------------------------------------

    def adopt(self) -> Coordinator:
        """Take over: stop following, open the journal, start serving.

        Returns a started :class:`Coordinator` bound to the standby's
        already-advertised socket, seeded from the ledger (the dead
        primary's journaled shards are resumed, a torn tail from a kill
        mid-append is truncated away) with only ``ledger.remaining()``
        shards queued. The caller drives ``run()``/``shutdown()`` —
        or uses :meth:`adopt_and_run`.
        """
        if not self._started:
            raise StandbyError("standby was never started")
        if self._coordinator is not None:
            raise StandbyError("standby has already adopted")
        # stop the follower/probe threads, keep the socket.
        self._halt.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        coordinator = Coordinator(
            self.config,
            server_socket=self._server,
            ledger=self.ledger,
            **self.coordinator_options,
        )
        self._coordinator = coordinator
        coordinator.start()
        return coordinator

    def adopt_and_run(
        self,
        *,
        timeout: float | None = None,
        autoscale: bool = False,
        min_workers: int = 0,
        max_workers: int = 4,
        autoscale_options: dict | None = None,
    ):
        """Adopt and drive the scan to its merged result.

        With ``autoscale`` the adopted coordinator also gets its own
        :class:`~repro.cluster.autoscale.ElasticPool` — the fully
        self-healing shape: even if every external worker died with the
        primary, the standby respawns capacity and finishes.
        """
        coordinator = self.adopt()
        pool = None
        try:
            if autoscale:
                from .autoscale import ElasticPool

                pool = ElasticPool(
                    coordinator,
                    min_workers=min_workers,
                    max_workers=max_workers,
                    **(autoscale_options or {}),
                )
                pool.start()
            return coordinator.run(timeout=timeout)
        finally:
            if pool is not None:
                pool.stop()
            coordinator.shutdown()

    @property
    def coordinator(self) -> Coordinator | None:
        """The adopted coordinator (``None`` while still following)."""
        return self._coordinator

    @property
    def stats(self):
        if self._coordinator is None:
            raise StandbyError("no stats before adoption")
        return self._coordinator.stats
