"""Deflationary (fee-on-transfer) ERC20.

STA — the token at the heart of the Balancer attack (paper Table I, row 3)
— burns 1% of every transfer. Pools that track internal balance records
instead of real balances drift out of sync with such tokens, which is the
mismatch the attacker drains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chain.errors import InsufficientBalance, Revert
from ..chain.types import Address, BLACKHOLE
from .erc20 import ERC20

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["DeflationaryERC20"]


class DeflationaryERC20(ERC20):
    """ERC20 that burns ``fee_bps`` basis points of every transfer."""

    def __init__(
        self,
        chain: "Chain",
        address: Address,
        symbol: str,
        decimals: int = 18,
        fee_bps: int = 100,
    ) -> None:
        super().__init__(chain, address, symbol, decimals)
        if not 0 <= fee_bps < 10_000:
            raise ValueError("fee_bps must be in [0, 10000)")
        self.fee_bps = fee_bps

    def _move(self, sender: Address, to: Address, amount: int) -> None:
        if amount < 0:
            raise Revert("negative transfer")
        balance = self.balance_of(sender)
        if balance < amount:
            raise InsufficientBalance(
                f"{self.symbol}: {sender.short} has {balance}, needs {amount}"
            )
        fee = amount * self.fee_bps // 10_000
        received = amount - fee
        self.storage.set(("balance", sender), balance - amount)
        self.storage.add(("balance", to), received)
        self.storage.add("total_supply", -fee)
        self.chain.record_token_transfer(sender, to, received, self.address)
        if fee:
            self.chain.record_token_transfer(sender, BLACKHOLE, fee, self.address)
