"""Token layer: ERC20, Wrapped Ether and the token metadata registry."""

from .deflationary import DeflationaryERC20
from .erc20 import ERC20
from .registry import TokenRegistry
from .weth import WETH, WETH_APP_NAME

__all__ = ["DeflationaryERC20", "ERC20", "TokenRegistry", "WETH", "WETH_APP_NAME"]
