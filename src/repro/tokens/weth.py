"""Wrapped Ether (WETH9-style).

The contract exchanges ETH and WETH 1:1. Its transfers are what the
paper's second simplification rule (*remove WETH related transfers*,
Sec. V-B-2) strips out after unifying WETH and ETH into one asset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chain.contract import Msg, external
from ..chain.types import Address
from .erc20 import ERC20

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["WETH", "WETH_APP_NAME"]

#: Etherscan-style application tag carried by the WETH contract.
WETH_APP_NAME = "Wrapped Ether"


class WETH(ERC20):
    """Canonical wrapped-Ether contract."""

    APP_NAME = WETH_APP_NAME

    def __init__(self, chain: "Chain", address: Address) -> None:
        super().__init__(chain, address, symbol="WETH", decimals=18)

    @external
    def deposit(self, msg: Msg) -> None:
        """Wrap the attached Ether: the caller receives the same amount of WETH.

        The incoming ETH transfer was already recorded by the call layer;
        here we credit the contract's own WETH float and move it out, so the
        trace shows exactly one WETH transfer *from* the WETH contract.
        """
        self.storage.add(("balance", self.address), msg.value)
        self.storage.add("total_supply", msg.value)
        self._move(self.address, msg.sender, msg.value)
        self.emit("Deposit", dst=msg.sender, wad=msg.value)

    @external
    def withdraw(self, msg: Msg, amount: int) -> None:
        """Unwrap: burn caller WETH, send back the same amount of ETH."""
        self._move(msg.sender, self.address, amount)
        self.storage.add(("balance", self.address), -amount)
        self.storage.add("total_supply", -amount)
        self.chain.send_ether(self.address, msg.sender, amount)
        self.emit("Withdrawal", src=msg.sender, wad=amount)

    def receive_ether(self, msg: Msg) -> None:
        """Plain ETH sends auto-wrap, matching WETH9's fallback."""
        self.storage.add(("balance", self.address), msg.value)
        self.storage.add("total_supply", msg.value)
        self._move(self.address, msg.sender, msg.value)
        self.emit("Deposit", dst=msg.sender, wad=msg.value)
