"""Token metadata registry.

Maps token addresses to their contract objects and symbols so reports,
oracles and experiments can render human-readable token pairs
(``"ETH-WBTC"``) the way the paper's Table I does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..chain.types import Address, ETHER
from .erc20 import ERC20

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["TokenRegistry"]


class TokenRegistry:
    """Symbol/decimals lookup for every token deployed on one chain."""

    def __init__(self, native_symbol: str = "ETH") -> None:
        self._tokens: dict[Address, ERC20] = {}
        self._by_symbol: dict[str, Address] = {}
        self.native_symbol = native_symbol

    def register(self, token: ERC20) -> ERC20:
        self._tokens[token.address] = token
        self._by_symbol[token.symbol] = token.address
        return token

    def deploy(
        self,
        chain: "Chain",
        deployer: Address,
        symbol: str,
        decimals: int = 18,
        label: str | None = None,
    ) -> ERC20:
        """Deploy a fresh ERC20 and register it in one step."""
        token = chain.deploy(deployer, ERC20, symbol, decimals, label=label, hint=symbol)
        return self.register(token)

    def get(self, address: Address) -> ERC20 | None:
        return self._tokens.get(address)

    def by_symbol(self, symbol: str) -> ERC20:
        return self._tokens[self._by_symbol[symbol]]

    def has_symbol(self, symbol: str) -> bool:
        return symbol in self._by_symbol

    def symbol_of(self, address: Address) -> str:
        if address == ETHER:
            return self.native_symbol
        token = self._tokens.get(address)
        return token.symbol if token is not None else address.short

    def pair_name(self, token_a: Address, token_b: Address) -> str:
        """Render a token pair the way Table I does, e.g. ``"ETH-WBTC"``."""
        return f"{self.symbol_of(token_a)}-{self.symbol_of(token_b)}"

    def __iter__(self) -> Iterator[ERC20]:
        return iter(self._tokens.values())

    def __len__(self) -> int:
        return len(self._tokens)
