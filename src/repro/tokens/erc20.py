"""ERC20 fungible token (EIP-20).

Every balance mutation records an ERC20 ``Transfer`` into the transaction
trace — the substrate's equivalent of the ``Transfer`` event log that real
detectors (and Etherscan) read. Mints originate from and burns terminate at
the zero address, which the paper's Table III calls the *BlackHole*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chain.contract import Contract, Msg, external
from ..chain.errors import InsufficientAllowance, InsufficientBalance, Revert
from ..chain.types import Address, BLACKHOLE

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["ERC20"]

_TOTAL_SUPPLY = "total_supply"


class ERC20(Contract):
    """A standard fungible token.

    Parameters
    ----------
    symbol:
        Ticker used in reports (``"WBTC"``, ``"sUSD"``, ...).
    decimals:
        Fixed-point scale; most tokens use 18, USDC-likes use 6.
    """

    def __init__(self, chain: "Chain", address: Address, symbol: str, decimals: int = 18) -> None:
        super().__init__(chain, address)
        self.symbol = symbol
        self.decimals = decimals

    # -- views -----------------------------------------------------------

    def balance_of(self, owner: Address) -> int:
        return self.storage.get(("balance", owner), 0)

    def allowance(self, owner: Address, spender: Address) -> int:
        return self.storage.get(("allowance", owner, spender), 0)

    def total_supply(self) -> int:
        return self.storage.get(_TOTAL_SUPPLY, 0)

    @property
    def unit(self) -> int:
        """One whole token in base units."""
        return 10**self.decimals

    # -- mutations (external entry points) --------------------------------

    @external
    def transfer(self, msg: Msg, to: Address, amount: int) -> bool:
        self._move(msg.sender, to, amount)
        return True

    @external
    def approve(self, msg: Msg, spender: Address, amount: int) -> bool:
        if amount < 0:
            raise Revert("negative approval")
        self.storage.set(("allowance", msg.sender, spender), amount)
        self.emit("Approval", owner=msg.sender, spender=spender, amount=amount)
        return True

    @external
    def transferFrom(self, msg: Msg, owner: Address, to: Address, amount: int) -> bool:
        allowed = self.allowance(owner, msg.sender)
        if allowed < amount:
            raise InsufficientAllowance(
                f"{self.symbol}: allowance {allowed} < {amount} for {msg.sender.short}"
            )
        self.storage.set(("allowance", owner, msg.sender), allowed - amount)
        self._move(owner, to, amount)
        return True

    # -- supply management (contract-internal) -----------------------------

    def mint(self, to: Address, amount: int) -> None:
        """Create ``amount`` new tokens for ``to`` (Transfer from BlackHole)."""
        if amount < 0:
            raise Revert("negative mint")
        self.storage.add(("balance", to), amount)
        self.storage.add(_TOTAL_SUPPLY, amount)
        self.chain.record_token_transfer(BLACKHOLE, to, amount, self.address)

    def burn(self, owner: Address, amount: int) -> None:
        """Destroy ``amount`` tokens of ``owner`` (Transfer to BlackHole)."""
        if amount < 0:
            raise Revert("negative burn")
        balance = self.balance_of(owner)
        if balance < amount:
            raise InsufficientBalance(f"{self.symbol}: burn {amount} > balance {balance}")
        self.storage.set(("balance", owner), balance - amount)
        self.storage.add(_TOTAL_SUPPLY, -amount)
        self.chain.record_token_transfer(owner, BLACKHOLE, amount, self.address)

    # -- internals ----------------------------------------------------------

    def _move(self, sender: Address, to: Address, amount: int) -> None:
        if amount < 0:
            raise Revert("negative transfer")
        balance = self.balance_of(sender)
        if balance < amount:
            raise InsufficientBalance(
                f"{self.symbol}: {sender.short} has {balance}, needs {amount}"
            )
        self.storage.set(("balance", sender), balance - amount)
        self.storage.add(("balance", to), amount)
        self.chain.record_token_transfer(sender, to, amount, self.address)
