"""Elastic wild scan: scale from zero, lose a worker, re-admit it.

Run::

    python examples/elastic_scan.py [scale]

Starts a cluster coordinator with **no** workers at all. The attached
elastic pool (:mod:`repro.cluster.autoscale`) notices the queue depth
and scales the fleet up to two workers on its own. Worker 0 is rigged to
die abruptly mid-shard; with ``max_worker_strikes=1`` the loss excludes
it immediately. After the probation cooldown the pool re-admits the
identity for one trial shard — a clean result clears its strikes and it
rejoins the fleet. The merged result is then compared against a plain
in-process ``ScanEngine`` run: byte-identical, because scaling decisions
never touch the shard partition or the merge order.
"""

from __future__ import annotations

import sys

from repro.cluster import ClusterWorker, WorkerKilled, run_cluster_scan
from repro.workload.generator import WildScanConfig, WildScanner


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    config = WildScanConfig(scale=scale, seed=7, shards=6)

    victim_state = {"killed": False}

    def worker_factory(index: int, address: tuple[str, int]) -> ClusterWorker:
        def die_mid_shard(worker: ClusterWorker, shard: int, task: int) -> None:
            if index == 0 and not victim_state["killed"] and task == 3:
                victim_state["killed"] = True
                print(f"  worker 0: killed mid-shard {shard} (task {task})")
                raise WorkerKilled()

        return ClusterWorker(address, name=f"elastic-{index}", task_hook=die_mid_shard)

    print(f"elastic scan at scale {scale}: 0 workers, pool capped at 2...\n")
    result, stats = run_cluster_scan(
        config,
        workers=0,
        autoscale=True,
        max_workers=2,
        autoscale_options={"poll_interval": 0.02, "probation_cooldown": 0.2},
        worker_factory=worker_factory,
        max_worker_strikes=1,
        heartbeat_timeout=5.0,
    )

    print(
        f"\nscan survived: {result.total_transactions} txs, "
        f"{result.detected_count} detections ({result.true_positives} true, "
        f"precision {result.precision:.1%})"
    )
    print(
        f"scaling events: {stats.workers_spawned} worker(s) spawned, "
        f"{stats.workers_drained} drained, "
        f"{stats.workers_readmitted} readmitted on probation "
        f"({stats.probation_passes} passed, {stats.probation_failures} failed)"
    )
    print(
        f"faults handled: {stats.worker_losses} worker loss(es), "
        f"{stats.workers_excluded} exclusion(s), {stats.requeues} shard requeue(s)"
    )

    batch = WildScanner(config).run()
    identical = [d.tx_hash for d in batch.detections] == [
        d.tx_hash for d in result.detections
    ]
    print(f"byte-identical to the in-process batch engine: {identical}")
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
