"""Quickstart: build a DeFi world, run an attack, detect it with LeiShen.

Run::

    python examples/quickstart.py

This builds a minimal vulnerable market (a vault priced off a Curve pool),
executes a Harvest-style multi-round attack funded by a Uniswap flash
swap, and walks the resulting transaction through the LeiShen pipeline.
"""

from __future__ import annotations

from repro.study.scenarios import SCENARIO_BUILDERS
from repro.world import DeFiWorld


def main() -> None:
    # ------------------------------------------------------------------
    # 1. replay a canonical attack (Harvest Finance, Oct 2020)
    # ------------------------------------------------------------------
    outcome = SCENARIO_BUILDERS["harvest"]()
    world: DeFiWorld = outcome.world
    print(f"replayed '{outcome.name}' — {len(outcome.trace.transfers)} asset transfers")

    # ------------------------------------------------------------------
    # 2. run the LeiShen pipeline on the transaction
    # ------------------------------------------------------------------
    detector = world.detector()
    report = detector.analyze(outcome.trace)
    assert report is not None, "not a flash loan transaction?"

    print("\nflash loans taken:")
    for loan in report.flash_loans:
        symbol = world.registry.symbol_of(loan.token)
        print(f"  {loan.provider}: {loan.amount / 10**6:,.0f} {symbol}")

    print("\nidentified trades (application level):")
    for trade in report.trades:
        sell = world.registry.symbol_of(trade.token_sell)
        buy = world.registry.symbol_of(trade.token_buy)
        print(
            f"  {trade.kind.value:<18} {str(trade.buyer)[:12]:<14} with "
            f"{str(trade.seller):<12} {sell} -> {buy}"
        )

    print("\nverdict:")
    if report.is_attack:
        patterns = ", ".join(sorted(report.patterns))
        print(f"  flpAttack detected!  patterns: {patterns}")
        print(f"  price volatility: {report.volatility():.2%}")
    else:
        print("  benign flash loan transaction")


if __name__ == "__main__":
    main()
