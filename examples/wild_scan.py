"""Run the wild scan and print every Sec. VI table.

Run::

    python examples/wild_scan.py [scale] [jobs]

``scale`` defaults to 0.05 (about 13,600 transactions, a few seconds);
``1.0`` regenerates the paper's full 272,984-transaction population.
``jobs`` fans the scan out over worker processes (results are
byte-identical for any value).
"""

from __future__ import annotations

import sys
import time

from repro.experiments import fig8, table5, table6, table7
from repro.workload import WildScanConfig, WildScanner


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    print(f"generating and scanning a scale-{scale} flash loan population "
          f"(jobs={jobs})...")
    start = time.perf_counter()
    result = WildScanner(WildScanConfig(scale=scale, seed=7, jobs=jobs)).run()
    elapsed = time.perf_counter() - start
    print(f"scanned {result.total_transactions:,} transactions in {elapsed:.1f}s\n")

    print(table5.render(result))
    print()
    print(table6.render(result))
    print()
    print(table7.render(result))
    print()
    print(fig8.render(result))

    print("\nwith the yield-aggregator heuristic (paper Sec. VI-C):")
    heuristic_result = WildScanner(
        WildScanConfig(scale=scale, seed=7, with_heuristic=True, jobs=jobs)
    ).run()
    mbs = heuristic_result.rows["MBS"]
    print(f"  MBS: N={mbs.n} TP={mbs.tp} FP={mbs.fp} precision={mbs.precision:.1%} "
          "(paper: 56.1% -> 80%)")


if __name__ == "__main__":
    main()
