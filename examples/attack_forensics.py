"""Forensic walk-through of the bZx-1 attack (paper Fig. 3 and Fig. 6).

Run::

    python examples/attack_forensics.py

Reconstructs the paper's Fig. 6: the raw account-level transfer history,
the tagged transfers, the application-level transfers after the three
simplification rules (watch the Kyber relay collapse and the WETH legs
disappear), the identified trades, and the matched SBS pattern — ending
with the attacker's profit valued in USD.
"""

from __future__ import annotations

from repro.leishen import FlashLoanIdentifier, ProfitAnalyzer
from repro.study.scenarios import SCENARIO_BUILDERS


def main() -> None:
    outcome = SCENARIO_BUILDERS["bzx1"]()
    world = outcome.world
    registry = world.registry
    trace = outcome.trace
    detector = world.detector()

    print("=" * 72)
    print("bZx-1 attack, 2020-02-15 — the first flash loan price manipulation")
    print("=" * 72)

    print("\n[1] account-level asset transfers (modified-Geth view):")
    for t in trace.transfers:
        print(
            f"  T{t.seq:<4} {t.sender.short} -> {t.receiver.short} "
            f"{t.amount / 10**18 if registry.get(t.token) is None or registry.get(t.token).decimals == 18 else t.amount / 10**8:>14,.2f} "
            f"{registry.symbol_of(t.token)}"
        )

    print("\n[2] tagged transfers (creation-tree account tagging):")
    tagged = detector.tagger.tag_transfers(trace.transfers)
    for t in tagged:
        print(f"  T{t.seq:<4} {str(t.tag_sender)[:18]:<20} -> {str(t.tag_receiver)[:18]:<20} "
              f"{registry.symbol_of(t.token)}")

    print("\n[3] application-level transfers (after the three rules):")
    app_transfers = detector.simplifier.simplify(tagged)
    for t in app_transfers:
        print(f"  T{t.seq:<4} {str(t.sender)[:18]:<20} -> {str(t.receiver)[:18]:<20} "
              f"{registry.symbol_of(t.token)}")
    removed = len(tagged) - len(app_transfers)
    print(f"  ({removed} transfers removed/merged — WETH legs and the Kyber relay)")

    print("\n[4] identified trades:")
    trades = detector.trade_identifier.identify(app_transfers)
    for i, trade in enumerate(trades, 1):
        rate = trade.sell_rate
        print(
            f"  trade{i}: {trade.buyer} {trade.kind.value} with {trade.seller} — "
            f"sells {registry.symbol_of(trade.token_sell)}, buys "
            f"{registry.symbol_of(trade.token_buy)} @ {rate:.6g}"
        )

    print("\n[5] pattern matching:")
    report = detector.analyze(trace)
    for match in report.matches:
        print(f"  {match.pattern} on {registry.symbol_of(match.target_token)}")
        for key, value in match.details:
            print(f"    {key}: {value}")

    print("\n[6] profit analysis:")
    analyzer = ProfitAnalyzer(registry)
    loans = FlashLoanIdentifier().identify(trace)
    accounts = [outcome.attacker, *outcome.attack_contracts]
    breakdown = analyzer.breakdown(trace, loans, accounts)
    print(f"  borrowed: ${breakdown.borrowed_usd:,.0f}")
    print(f"  profit:   ${breakdown.profit_usd:,.0f}")
    print(f"  yield:    {breakdown.yield_rate:.2%}")


if __name__ == "__main__":
    main()
