"""Distributed wild scan: two workers, one dies, the result is identical.

Run::

    python examples/cluster_scan.py [scale]

Starts a cluster coordinator on a loopback port and two workers. Worker
0 is rigged to die abruptly mid-shard — its socket drops with no
goodbye, exactly like a SIGKILL'd process. The coordinator notices the
loss, requeues the orphaned shard, and the surviving worker finishes
the scan. The merged result is then compared against a plain in-process
``ScanEngine`` run: byte-identical, because the shard partition and the
merge order are functions of ``(seed, scale, shards)`` only — never of
which worker executed what.
"""

from __future__ import annotations

import sys

from repro.cluster import ClusterWorker, WorkerKilled, run_cluster_scan
from repro.workload.generator import WildScanConfig, WildScanner


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    config = WildScanConfig(scale=scale, seed=7, shards=4)

    victim_state = {"killed": False}

    def worker_factory(index: int, address: tuple[str, int]) -> ClusterWorker:
        def die_mid_shard(worker: ClusterWorker, shard: int, task: int) -> None:
            # one abrupt death, three tasks into worker 0's first shard
            if not victim_state["killed"] and task == 3:
                victim_state["killed"] = True
                print(f"  worker 0: killed mid-shard {shard} (task {task})")
                raise WorkerKilled()

        return ClusterWorker(
            address,
            name=f"demo-{index}",
            task_hook=die_mid_shard if index == 0 else None,
        )

    print(f"cluster scan at scale {scale}: 2 workers, one rigged to die...\n")
    result, stats = run_cluster_scan(
        config, workers=2, worker_factory=worker_factory, heartbeat_timeout=5.0
    )

    print(
        f"\nscan survived: {result.total_transactions} txs, "
        f"{result.detected_count} detections ({result.true_positives} true, "
        f"precision {result.precision:.1%})"
    )
    print(
        f"faults handled: {stats.worker_losses} worker loss(es), "
        f"{stats.requeues} shard requeue(s), "
        f"{stats.duplicates_suppressed} duplicate(s) suppressed"
    )

    batch = WildScanner(config).run()
    identical = [d.tx_hash for d in batch.detections] == [
        d.tx_hash for d in result.detections
    ]
    print(f"byte-identical to the in-process batch engine: {identical}")
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
