"""Resident scan service: submit, coalesce, warm-start, restart, page.

Run::

    python examples/service_scan.py [scale]

Stands up the whole multi-tenant stack in one process — a
:class:`~repro.service.ScanService` over a data directory, fronted by a
framed-JSON TCP :class:`~repro.service.ServiceServer` — and walks the
lifecycle a long-lived deployment cares about:

1. submit a scan over TCP and poll it to completion;
2. submit the *same* config again — it coalesces onto the completed run
   (the run id is the config digest, so nothing scans twice);
3. submit a different seed over the same shard layout — the warm-entity
   cache hands every shard its context snapshot, skipping the world
   rebuilds;
4. stop the service, start a fresh one over the same data dir — the new
   process adopts the persisted ledgers and serves the old results
   without re-scanning;
5. page the detections out of the completed ledger.
"""

from __future__ import annotations

import sys
import tempfile

from repro.service import ScanService, ServiceClient, ServiceServer
from repro.workload.generator import WildScanConfig


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02

    with tempfile.TemporaryDirectory(prefix="repro-service-") as data_dir:
        with ScanService(data_dir, executors=2) as service:
            with ServiceServer(service) as server:
                host, port = server.address
                print(f"scan service on {host}:{port} (data dir {data_dir})\n")
                with ServiceClient(server.address) as client:
                    # 1. cold submit: includes every shard's world build.
                    config = WildScanConfig(scale=scale, seed=7, shards=4)
                    run = client.submit(config)
                    print(f"submitted {run['run_id']} ({run['state']})")
                    done = client.wait(run["run_id"])
                    summary = done["summary"]
                    print(
                        f"  completed: {summary['detected']} detections / "
                        f"{summary['total_transactions']} txs, warm hits "
                        f"{done['warm_hits']}/{done['warm_hits'] + done['warm_misses']}\n"
                    )

                    # 2. duplicate submit: coalesces, nothing re-scans.
                    again = client.submit(config)
                    print(
                        f"resubmitted the same config -> {again['run_id']} "
                        f"(coalesced={again['coalesced']}, "
                        f"state={again['state']})\n"
                    )

                    # 3. warm submit: same shard layout, different seed.
                    warm = client.submit(
                        WildScanConfig(scale=scale, seed=11, shards=4)
                    )
                    warm_done = client.wait(warm["run_id"])
                    print(
                        f"warm run {warm['run_id']}: snapshot-cache hits "
                        f"{warm_done['warm_hits']}/"
                        f"{warm_done['warm_hits'] + warm_done['warm_misses']} "
                        f"(world rebuilds skipped)\n"
                    )
                    cold_id = run["run_id"]

        # 4. restart: a new service over the same data dir adopts the
        # persisted ledgers and serves results without re-scanning.
        with ScanService(data_dir, executors=2) as revived:
            with ServiceServer(revived) as server:
                with ServiceClient(server.address) as client:
                    view = client.status(cold_id)
                    print(
                        f"after restart: {cold_id} is {view['state']} "
                        f"(served from the persisted ledger)"
                    )

                    # 5. page the detections straight out of the journal.
                    page = client.results(cold_id, offset=0, limit=5)
                    print(
                        f"  page 1: {page['count']} of "
                        f"{page['total_detections']} detections"
                    )
                    for det in page["detections"]:
                        print(
                            f"    {det['tx_hash'][:18]}...  "
                            f"{'+'.join(det['patterns'])}  "
                            f"${det['profit_usd']:,.0f}"
                        )
                    if page["next_offset"] is not None:
                        print(f"  next page at offset {page['next_offset']}")


if __name__ == "__main__":
    main()
