"""Live monitoring bot: detect flpAttacks as blocks are produced.

Run::

    python examples/live_monitor.py

Simulates the deployment mode the paper motivates: a detector subscribed
to new blocks, screening every flash loan transaction within its 10 ms
budget and alerting on pattern matches. Here the "chain" is a simulated
world where benign traffic is interleaved with two injected attacks; the
subscription is :func:`repro.engine.stream.screen_blocks` replaying the
explorer's block feed in block order.
"""

from __future__ import annotations

import random

from repro.chain.explorer import ChainExplorer
from repro.engine.stream import screen_blocks
from repro.workload.attacks import ATTACK_CLUSTERS, WildAttackInjector
from repro.workload.profiles import BENIGN_PROFILES, WildMarket
from repro.world import DeFiWorld


def main() -> None:
    rng = random.Random(42)
    world = DeFiWorld()
    market = WildMarket(world, rng)
    injector = WildAttackInjector(market, rng, scale=0.01)
    detector = world.detector()

    # produce on-chain traffic: mostly benign, two attacks hidden inside
    attack_clusters = [c for c in ATTACK_CLUSTERS if c.shape in ("sbs", "mbs")][:2]
    schedule: list = []
    runners = [runner for _, _, runner in BENIGN_PROFILES]
    weights = [weight for _, weight, _ in BENIGN_PROFILES]
    for _ in range(60):
        runner = rng.choices(runners, weights)[0]
        schedule.append(lambda r=runner: r(market))
    for cluster in attack_clusters:
        schedule.insert(rng.randint(10, 50), lambda c=cluster: injector.execute(c, 0, 0, 0, None))

    first_block = world.chain.block_number + 1
    for produce in schedule:
        world.chain.mine()
        produce()

    # subscribe: replay the explorer's block feed through the detector
    print("monitoring incoming flash loan transactions...\n")
    explorer = ChainExplorer(world.chain)
    blocks = explorer.blocks_between(first_block, world.chain.block_number)
    alerts = 0
    screened = 0
    for tx in screen_blocks(detector, blocks):
        screened += 1
        report = tx.report
        if tx.is_attack:
            alerts += 1
            patterns = ",".join(sorted(report.patterns))
            print(
                f"block {tx.block_number}: ALERT {patterns} "
                f"tx={report.tx_hash[:12]} volatility={report.volatility():.2%} "
                f"({tx.latency_ms:.2f} ms)"
            )
        elif screened % 20 == 1:
            print(f"block {tx.block_number}: flash loan tx screened "
                  f"({tx.latency_ms:.2f} ms) — clean")

    truth = len(attack_clusters)
    print(f"\n{alerts} alerts raised on {screened} flash loan txs; "
          f"{truth} attacks were injected")


if __name__ == "__main__":
    main()
