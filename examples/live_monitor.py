"""Live monitoring bot: detect flpAttacks as blocks are produced.

Run::

    python examples/live_monitor.py

Simulates the deployment mode the paper motivates: a detector subscribed
to new blocks, screening every flash loan transaction within its 10 ms
budget and alerting on pattern matches. Here the "chain" is a simulated
world where benign traffic is interleaved with two injected attacks.
"""

from __future__ import annotations

import random
import time

from repro.workload.attacks import ATTACK_CLUSTERS, WildAttackInjector
from repro.workload.profiles import BENIGN_PROFILES, WildMarket
from repro.world import DeFiWorld


def main() -> None:
    rng = random.Random(42)
    world = DeFiWorld()
    market = WildMarket(world, rng)
    injector = WildAttackInjector(market, rng, scale=0.01)
    detector = world.detector()

    # a block stream: mostly benign traffic, two attacks hidden inside
    attack_clusters = [c for c in ATTACK_CLUSTERS if c.shape in ("sbs", "mbs")][:2]
    schedule: list = []
    runners = [runner for _, _, runner in BENIGN_PROFILES]
    weights = [weight for _, weight, _ in BENIGN_PROFILES]
    for _ in range(60):
        runner = rng.choices(runners, weights)[0]
        schedule.append(lambda r=runner: r(market))
    for cluster in attack_clusters:
        schedule.insert(rng.randint(10, 50), lambda c=cluster: injector.execute(c, 0, 0, 0, None))

    print("monitoring incoming flash loan transactions...\n")
    alerts = 0
    for height, produce in enumerate(schedule):
        world.chain.mine()
        labeled = produce()
        start = time.perf_counter()
        report = detector.analyze(labeled.trace)
        latency_ms = (time.perf_counter() - start) * 1e3
        if report is None:
            continue  # not a flash loan transaction
        if report.is_attack:
            alerts += 1
            patterns = ",".join(sorted(p.name for p in report.patterns))
            print(
                f"block {world.chain.block_number}: ALERT {patterns} "
                f"tx={report.tx_hash[:12]} volatility={report.volatility():.2%} "
                f"({latency_ms:.2f} ms)"
            )
        elif height % 20 == 0:
            print(f"block {world.chain.block_number}: flash loan tx screened "
                  f"({latency_ms:.2f} ms) — clean")

    truth = sum(1 for c in attack_clusters for _ in range(1))
    print(f"\n{alerts} alerts raised; {truth} attacks were injected")


if __name__ == "__main__":
    main()
