"""Hot-standby failover: kill the coordinator mid-scan, lose nothing.

Run::

    python examples/failover_scan.py [scale]

Launches a journaled cluster scan with a primary coordinator, a hot
standby following it, and two workers whose connect lists carry *both*
addresses. Mid-scan the primary is shut down abruptly — no handoff, no
goodbye, exactly what a SIGKILL looks like from the outside. The
standby's liveness probe notices, adopts the shared run ledger (every
shard the primary journaled before dying replays from disk), and serves
the remainder on its own socket; the workers' reconnect loops rotate to
the standby address on their own. The merged result is byte-identical
to an uninterrupted in-process run — the journal makes that a
structural property, not a recovery heuristic.

Along the way the ledger also compacts: with ``compact_every=2`` the
journal folds its merged prefix into a single snapshot record every two
shards, so replay cost at adoption stays flat no matter how far the
scan got.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.cluster import ClusterWorker, Coordinator, StandbyCoordinator
from repro.engine.scan import ScanEngine
from repro.runtime import RunLedger
from repro.workload.generator import WildScanConfig

SHARDS = 6


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    config = WildScanConfig(scale=scale, seed=7, shards=SHARDS)

    with tempfile.TemporaryDirectory(prefix="repro-failover-") as tmp:
        path = Path(tmp) / "run.ledger"
        ledger = RunLedger.create(path, config, SHARDS, compact_every=2)

        # primary + hot standby share the journal path; the standby
        # binds its socket up front but opens the ledger only on adoption.
        primary = Coordinator(config, ledger=ledger, local_fallback=False)
        primary.start()
        standby = StandbyCoordinator(
            config,
            primary=primary.address,
            ledger=path,
            probe_interval=0.05,
            probe_failures=3,
            coordinator_options={"local_fallback": True},
        )
        standby.start()
        print(
            f"primary {primary.address[0]}:{primary.address[1]}, "
            f"standby {standby.address[0]}:{standby.address[1]} "
            f"(journal: {path.name}, compact_every=2)"
        )

        # two workers, each carrying BOTH addresses in its connect list.
        addresses = [primary.address, standby.address]

        def run_worker(index: int) -> None:
            def hook(worker, shard, number):
                time.sleep(0.002)  # slow tasks so the kill lands mid-scan

            while True:
                summary = ClusterWorker(
                    addresses, name=f"worker-{index}", task_hook=hook
                ).run()
                if summary.shards_completed or summary.killed:
                    return
                time.sleep(0.05)  # both ends were between phases; retry

        threads = [
            threading.Thread(target=run_worker, args=(i,), daemon=True)
            for i in range(2)
        ]
        for thread in threads:
            thread.start()

        # wait for the primary to journal at least one shard, then kill it.
        while len(RunLedger.open(path).completed_shards()) < 1:
            time.sleep(0.01)
        journaled = len(RunLedger.open(path).completed_shards())
        primary.shutdown()
        print(f"primary killed with {journaled} shard(s) journaled")

        assert standby.wait_for_primary_death(timeout=30.0)
        detect_s = standby.death_detected_at - standby.started_at
        print(f"standby detected the death ({detect_s:.2f}s after launch) — adopting")

        result = standby.adopt_and_run(timeout=120.0)
        stats = standby.stats
        standby.shutdown()
        for thread in threads:
            thread.join(timeout=10.0)
        print(
            f"adopted run: {stats.resumed_shards} shard(s) replayed from the "
            f"journal, {stats.assignments} reassigned, "
            f"{stats.duplicates_suppressed} late duplicate(s) suppressed"
        )

        replay = RunLedger.open(path, config=config, shard_count=SHARDS)
        print(
            f"journal after the scan: generation {replay.generation}, "
            f"{replay.snapshot_shards} shard(s) folded into the snapshot"
        )
        replay.close()

        cold = ScanEngine(config).run()
        identical = (
            [d.tx_hash for d in cold.detections]
            == [d.tx_hash for d in result.detections]
            and cold.total_transactions == result.total_transactions
        )
        print(f"byte-identical to an uninterrupted run: {identical}")
        if not identical:
            raise SystemExit(1)


if __name__ == "__main__":
    main()
