"""Durable wild scan: journal to a run ledger, kill it, resume it.

Run::

    python examples/resume_scan.py [scale]

Journals a wild scan to an append-only run ledger, but stops it halfway
through — simulating a process killed mid-flight. A second engine then
opens the same ledger: the completed shards load straight from the
journal, only the remainder is scheduled, and the final merge decodes
*from the ledger*, so the resumed result is byte-identical to an
uninterrupted run. A third open of the (now complete) ledger schedules
nothing at all and reproduces the result from the journal alone.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.engine.plan import build_schedule, shard_schedule
from repro.engine.scan import ScanEngine, run_shard
from repro.runtime import RunLedger
from repro.workload.generator import WildScanConfig

SHARDS = 6


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    config = WildScanConfig(scale=scale, seed=7, shards=SHARDS)

    with tempfile.TemporaryDirectory(prefix="repro-resume-") as tmp:
        path = Path(tmp) / "run.ledger"

        # phase 1: a run that dies halfway — journal the first three
        # shards, then "crash" before the rest are scheduled.
        interrupted_after = SHARDS // 2
        parts = shard_schedule(build_schedule(config.scale, config.seed), SHARDS)
        ledger = RunLedger.create(path, config, SHARDS)
        print(f"journaled scan at scale {scale}: {SHARDS} shards -> {path.name}")
        for index in range(interrupted_after):
            ledger.record(run_shard((config, index, SHARDS, parts[index])))
            print(f"  shard {index}: recorded")
        ledger.close()
        print(f"  ...killed after {interrupted_after} of {SHARDS} shards\n")

        # phase 2: resume. Completed shards load from the journal; only
        # the remainder runs; the merge decodes from the ledger.
        engine = ScanEngine(config, ledger=path)
        result = engine.run()
        print(
            f"resumed: {engine.ledger.resumed_count} shard(s) from the "
            f"journal, {engine.ledger.recorded_count} freshly executed"
        )
        print(
            f"  {result.total_transactions} txs, {result.detected_count} "
            f"detections ({result.true_positives} true, "
            f"precision {result.precision:.1%})\n"
        )

        # phase 3: the ledger is complete — resuming again schedules
        # zero shards and replays the merge from the journal alone.
        replay_engine = ScanEngine(config, ledger=path)
        replay = replay_engine.run()
        print(
            f"replayed: {replay_engine.ledger.resumed_count} shard(s) "
            f"resumed, {replay_engine.ledger.recorded_count} executed"
        )

        cold = ScanEngine(config).run()
        identical = (
            [d.tx_hash for d in cold.detections]
            == [d.tx_hash for d in result.detections]
            == [d.tx_hash for d in replay.detections]
        )
        print(f"byte-identical to an uninterrupted run: {identical}")
        if not identical:
            raise SystemExit(1)


if __name__ == "__main__":
    main()
