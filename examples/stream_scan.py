"""Streaming wild scan: detections emitted block by block, in block order.

Run::

    python examples/stream_scan.py [scale] [jobs]

Feeds the seeded wild-scan population through the streaming pipeline
(:mod:`repro.engine.stream`) instead of the batch engine: transactions
flow through bounded per-shard queues, and a watermark merger emits each
block's detections the moment every transaction at or before it has been
screened. The final result is byte-identical to the batch scan for the
same seed and scale — streaming changes *when* you learn about attacks,
never *what* is detected.
"""

from __future__ import annotations

import sys

from repro.engine.stream import StreamEngine
from repro.workload.generator import WildScanConfig


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    config = WildScanConfig(scale=scale, seed=7, jobs=jobs, shards=4)
    engine = StreamEngine(config, queue_depth=32, block_size=16)

    print(f"streaming {scale:.3f}-scale population through {jobs} worker(s)...\n")

    def on_block(stats, detections) -> None:
        for detection in detections:
            patterns = ",".join(detection.patterns)
            verdict = "TRUE ATTACK" if detection.is_true_attack else "false positive"
            print(
                f"block {stats.number}: ALERT {patterns} "
                f"tx={detection.tx_hash[:12]} ({verdict}; "
                f"block latency {stats.latency_ms:.1f} ms)"
            )

    streamed = engine.run(on_block=on_block)
    result = streamed.result
    print(
        f"\n{streamed.total_transactions} txs in {len(streamed.blocks)} blocks: "
        f"{result.detected_count} detections ({result.true_positives} true, "
        f"precision {result.precision:.1%})"
    )
    print(
        f"throughput {streamed.txs_per_s:,.0f} txs/s; block latency "
        f"p50 {streamed.latency_percentile(0.5):.1f} ms / "
        f"p95 {streamed.latency_percentile(0.95):.1f} ms; "
        f"queue high-watermark {streamed.max_queue_depth}/{streamed.queue_depth}"
    )


if __name__ == "__main__":
    main()
